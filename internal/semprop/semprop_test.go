package semprop_test

import (
	"testing"

	"ofence/internal/callgraph"
	"ofence/internal/corpus"
	"ofence/internal/cparser"
	"ofence/internal/cpp"
	"ofence/internal/kernelhdr"
	"ofence/internal/memmodel"
	"ofence/internal/semprop"
)

func buildGraph(t *testing.T, files map[string]string) *callgraph.Graph {
	t.Helper()
	var cgf []callgraph.File
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	// Map order is random; sort for deterministic node order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		ast, _ := cparser.ParseSource(name, files[name], cpp.Options{Include: kernelhdr.Headers()})
		cgf = append(cgf, callgraph.File{Name: name, AST: ast})
	}
	return callgraph.Build(cgf)
}

func inferKinds(t *testing.T, files map[string]string) map[string]memmodel.BarrierKind {
	t.Helper()
	inf := semprop.Infer(buildGraph(t, files), semprop.Options{})
	if !inf.Converged {
		t.Fatalf("no fixpoint after %d rounds", inf.Rounds)
	}
	kinds := map[string]memmodel.BarrierKind{}
	for _, n := range inf.Graph.Nodes {
		kinds[n.Name()] = inf.Kind(n)
	}
	return kinds
}

func TestAllPathsBarrierClassification(t *testing.T) {
	kinds := inferKinds(t, map[string]string{"a.c": `
void always(int *p) { *p = 1; smp_mb(); }
void wronly(int *p) { *p = 1; smp_wmb(); }
void rdonly(int *p) { smp_rmb(); *p = 1; }
void maybe(int c) { if (c) smp_mb(); }
void both_arms(int c) { if (c) smp_mb(); else smp_mb(); }
void mixed_arms(int c) { if (c) smp_wmb(); else smp_rmb(); }
void sequential(void) { smp_rmb(); smp_wmb(); }
void early_out(int c) { if (!c) return; smp_mb(); }
void in_loop(int n) { while (n) { smp_mb(); n = n - 1; } }
void do_loop(int n) { do { smp_mb(); } while (n); }
void empty(void) { }
`})
	want := map[string]memmodel.BarrierKind{
		"always":     memmodel.FullBarrier,
		"wronly":     memmodel.WriteBarrier,
		"rdonly":     memmodel.ReadBarrier,
		"maybe":      memmodel.None, // barrier only on one path
		"both_arms":  memmodel.FullBarrier,
		"mixed_arms": memmodel.None,        // read ∧ write = none: neither is guaranteed
		"sequential": memmodel.FullBarrier, // read ∨ write = full
		"early_out":  memmodel.None,        // the early return path has no barrier
		"in_loop":    memmodel.None,        // while body may not execute
		"do_loop":    memmodel.FullBarrier, // do-while body always executes
		"empty":      memmodel.None,
	}
	for name, w := range want {
		if kinds[name] != w {
			t.Errorf("%s = %v, want %v", name, kinds[name], w)
		}
	}
}

func TestWrapperPropagation(t *testing.T) {
	// A three-deep wrapper chain across files: the kind must propagate
	// bottom-up through the call graph.
	kinds := inferKinds(t, map[string]string{
		"low.c": `void publish_low(int *p) { *p = 1; smp_wmb(); }`,
		"mid.c": `void publish_mid(int *p) { publish_low(p); }`,
		"top.c": `void publish_top(int *p) { publish_mid(p); }
		          void cond_top(int c, int *p) { if (c) publish_mid(p); }`,
	})
	for _, fn := range []string{"publish_low", "publish_mid", "publish_top"} {
		if kinds[fn] != memmodel.WriteBarrier {
			t.Errorf("%s = %v, want write", fn, kinds[fn])
		}
	}
	if kinds["cond_top"] != memmodel.None {
		t.Errorf("cond_top = %v, want none", kinds["cond_top"])
	}
}

func TestTable2CallContributes(t *testing.T) {
	// Calling a catalog barrier function (Table 2) counts like a barrier.
	kinds := inferKinds(t, map[string]string{"a.c": `
void via_atomic(int *p) { atomic_dec_and_test(p); }
void via_nonbarrier(int *p) { atomic_set(p, 0); }
`})
	if kinds["via_atomic"] != memmodel.FullBarrier {
		t.Errorf("via_atomic = %v, want full", kinds["via_atomic"])
	}
	if kinds["via_nonbarrier"] != memmodel.None {
		t.Errorf("via_nonbarrier = %v, want none", kinds["via_nonbarrier"])
	}
}

func TestRecursionConverges(t *testing.T) {
	kinds := inferKinds(t, map[string]string{"r.c": `
void rec_b(int n) { smp_mb(); if (n) rec_b(n - 1); }
void ping(int n);
void pong(int n) { smp_wmb(); if (n) ping(n - 1); }
void ping(int n) { smp_wmb(); if (n) pong(n - 1); }
void rec_cond(int n) { if (n) { smp_mb(); rec_cond(n - 1); } }
`})
	if kinds["rec_b"] != memmodel.FullBarrier {
		t.Errorf("rec_b = %v, want full", kinds["rec_b"])
	}
	if kinds["ping"] != memmodel.WriteBarrier || kinds["pong"] != memmodel.WriteBarrier {
		t.Errorf("ping/pong = %v/%v, want write/write", kinds["ping"], kinds["pong"])
	}
	if kinds["rec_cond"] != memmodel.None {
		t.Errorf("rec_cond = %v, want none", kinds["rec_cond"])
	}
}

func TestUnresolvedPointerDegrades(t *testing.T) {
	kinds := inferKinds(t, map[string]string{"p.c": `
struct ops { void (*cb)(void); };
void through_ptr(struct ops *o) { smp_mb(); o->cb(); }
void only_ptr(struct ops *o) { o->cb(); }
`})
	// The unresolved pointer call contributes none but must not erase the
	// explicit barrier, nor invent one.
	if kinds["through_ptr"] != memmodel.FullBarrier {
		t.Errorf("through_ptr = %v, want full", kinds["through_ptr"])
	}
	if kinds["only_ptr"] != memmodel.None {
		t.Errorf("only_ptr = %v, want none", kinds["only_ptr"])
	}
}

// The acceptance gate: inference over the Table 2 model re-derives exactly
// the catalog's MemoryBarrier entries as full barriers.
func TestRederivesTable2(t *testing.T) {
	kinds := inferKinds(t, map[string]string{semprop.Table2ModelFile: semprop.Table2ModelSource()})
	for _, s := range memmodel.Functions {
		got, defined := kinds[s.Name]
		if !defined {
			t.Errorf("%s: not in model graph", s.Name)
			continue
		}
		want := memmodel.None
		if s.MemoryBarrier {
			want = memmodel.FullBarrier
		}
		if got != want {
			t.Errorf("%s = %v, want %v (catalog MemoryBarrier=%t)", s.Name, got, want, s.MemoryBarrier)
		}
	}
}

// Fixpoint over the full synthetic corpus plus the paper fixtures plus the
// Table 2 model: must converge well under the theoretical round bound and
// re-derive the catalog barriers.
func TestCorpusFixpoint(t *testing.T) {
	files := map[string]string{semprop.Table2ModelFile: semprop.Table2ModelSource()}
	c := corpus.Generate(corpus.DefaultConfig(42))
	for _, sf := range c.Sources() {
		files[sf.Name] = sf.Src
	}
	for _, fx := range corpus.Fixtures() {
		files["fixture/"+fx.Name] = fx.Source
	}
	g := buildGraph(t, files)
	inf := semprop.Infer(g, semprop.Options{})
	if !inf.Converged {
		t.Fatalf("no fixpoint after %d rounds over %d functions", inf.Rounds, len(g.Nodes))
	}
	if bound := 2*len(g.Nodes) + 1; inf.Rounds >= bound {
		t.Errorf("rounds = %d, expected well under bound %d", inf.Rounds, bound)
	}

	inferred := map[string]memmodel.BarrierKind{}
	for _, f := range inf.Functions() {
		inferred[f.Name] = f.Kind
	}
	for _, s := range memmodel.Functions {
		if !s.MemoryBarrier {
			continue
		}
		if inferred[s.Name] != memmodel.FullBarrier {
			t.Errorf("Table 2 %s not re-derived (got %v)", s.Name, inferred[s.Name])
		}
	}
	// The corpus's own barrier-wrapping functions must extend the table:
	// at least one inferred function outside the built-in catalog.
	extra := 0
	for _, f := range inf.Functions() {
		if !f.Known {
			extra++
		}
	}
	if extra == 0 {
		t.Error("no corpus functions inferred beyond the built-in catalog")
	}
}

func TestFunctionsDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"b.c": `void wb(int *p) { *p = 1; smp_wmb(); }`,
		"a.c": `void fb(void) { smp_mb(); } void wb2(int *p) { wb(p); }`,
	}
	var prev []semprop.InferredFn
	for i := 0; i < 5; i++ {
		inf := semprop.Infer(buildGraph(t, files), semprop.Options{})
		fns := inf.Functions()
		if i > 0 {
			if len(fns) != len(prev) {
				t.Fatalf("run %d: %d fns, was %d", i, len(fns), len(prev))
			}
			for j := range fns {
				if fns[j] != prev[j] {
					t.Fatalf("run %d: order differs at %d: %+v vs %+v", i, j, fns[j], prev[j])
				}
			}
		}
		prev = fns
	}
}
