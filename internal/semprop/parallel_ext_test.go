package semprop_test

import (
	"fmt"
	"testing"

	"ofence/internal/callgraph"
	"ofence/internal/cparser"
	"ofence/internal/cpp"
	"ofence/internal/kernelhdr"
	"ofence/internal/semprop"
	"ofence/internal/sitegen"
)

// diffInfer runs the legacy round-robin schedule and the SCC schedule over
// the same graph and asserts identical per-node kinds at several worker
// counts. Order-independence of the least fixpoint is the whole soundness
// argument for the SCC schedule; this is its regression net.
func diffInfer(t *testing.T, g *callgraph.Graph, opts semprop.Options) {
	t.Helper()
	seqOpts := opts
	seqOpts.Sequential = true
	seq := semprop.Infer(g, seqOpts)
	if !seq.Converged {
		t.Fatalf("sequential oracle did not converge in %d rounds", seq.Rounds)
	}
	for _, workers := range []int{1, 3, 8} {
		sccOpts := opts
		sccOpts.Sequential = false
		sccOpts.Workers = workers
		scc := semprop.Infer(g, sccOpts)
		if !scc.Converged {
			t.Fatalf("workers=%d: SCC schedule did not converge", workers)
		}
		if scc.Components == 0 || scc.Levels == 0 {
			t.Errorf("workers=%d: SCC schedule reported no components/levels", workers)
		}
		for _, n := range g.Nodes {
			if seq.Kind(n) != scc.Kind(n) {
				t.Errorf("workers=%d: %s/%s: sequential %v vs SCC %v",
					workers, n.File, n.Name(), seq.Kind(n), scc.Kind(n))
			}
		}
	}
}

// TestSCCScheduleEquivalence covers recursion shapes the condensation must
// get right: self-recursion, mutual recursion across files, a recursive
// pair wrapping a barrier, and diamond call patterns.
func TestSCCScheduleEquivalence(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"a.c": `
void leaf(void) { smp_wmb(); }
void wrap1(void) { leaf(); }
void wrap2(void) { wrap1(); }
void rec(int n) { if (n) { smp_mb(); rec(n - 1); } }
void norec(int n) { if (n) rec(n - 1); }
`,
		"b.c": `
void ping(int n);
void pong(int n) { smp_rmb(); if (n) ping(n - 1); }
void ping(int n) { smp_rmb(); if (n) pong(n - 1); }
void diamond(int c) { if (c) wrap2(); else leaf(); }
void partial(int c) { if (c) leaf(); }
`,
	})
	diffInfer(t, g, semprop.Options{})
}

// TestSCCScheduleEquivalenceTree runs the differential over generated
// trees: deep caller-before-callee wrapper chains bottoming into a
// cross-subsystem core chain — the adversarial shape for the legacy
// schedule and the reason the SCC schedule exists.
func TestSCCScheduleEquivalenceTree(t *testing.T) {
	for _, seed := range []int64{1, 99} {
		tr := sitegen.GenerateTree(sitegen.DefaultTreeSpec(64, seed))
		var cgf []callgraph.File
		for _, f := range tr.Files {
			ast, _ := cparser.ParseSource(f.Name, f.Src, cpp.Options{Include: kernelhdr.Headers()})
			cgf = append(cgf, callgraph.File{Name: f.Name, AST: ast})
		}
		g := callgraph.Build(cgf)
		diffInfer(t, g, semprop.Options{})

		// The deep chains must actually be inferred end to end: every
		// subsystem chain head is a wrapper whose only path executes the
		// core chain's bottom barrier.
		inf := semprop.Infer(g, semprop.Options{})
		heads := 0
		for _, n := range g.Nodes {
			if len(n.Fn.Name) > 10 && n.Fn.Name[len(n.Fn.Name)-10:] == "_sync_0000" {
				heads++
				if inf.Kind(n) == 0 {
					t.Errorf("seed %d: chain head %s inferred as none", seed, n.Name())
				}
			}
		}
		if heads == 0 {
			t.Fatalf("seed %d: no chain heads found", seed)
		}
	}
}

// TestSCCScheduleRoundsBounded pins the point of the schedule: local round
// counts stay tiny even when the legacy schedule needs hundreds of global
// rounds over the same graph.
func TestSCCScheduleRoundsBounded(t *testing.T) {
	tr := sitegen.GenerateTree(sitegen.DefaultTreeSpec(96, 5))
	var cgf []callgraph.File
	for _, f := range tr.Files {
		ast, _ := cparser.ParseSource(f.Name, f.Src, cpp.Options{Include: kernelhdr.Headers()})
		cgf = append(cgf, callgraph.File{Name: f.Name, AST: ast})
	}
	g := callgraph.Build(cgf)

	seq := semprop.Infer(g, semprop.Options{Sequential: true})
	scc := semprop.Infer(g, semprop.Options{})
	if seq.Rounds < 20 {
		t.Fatalf("tree no longer adversarial for the legacy schedule (%d rounds) — regenerate the spec", seq.Rounds)
	}
	if scc.Rounds > 4 {
		t.Errorf("SCC local rounds = %d, want <= 4 (acyclic components evaluate once)", scc.Rounds)
	}
	if msg := fmt.Sprintf("seq=%d scc=%d comps=%d levels=%d", seq.Rounds, scc.Rounds, scc.Components, scc.Levels); testing.Verbose() {
		t.Log(msg)
	}
}
