// Package semprop infers implicit barrier semantics interprocedurally: a
// function whose every path from entry to exit executes a memory barrier —
// an explicit Table 1 primitive, a Table 2 function, or a call to an
// already-inferred function — is itself classified as an implicit read,
// write, or full barrier.
//
// This automatically re-derives the paper's hand-curated Table 2 from
// function bodies instead of hardcoding it, and extends it with
// corpus-specific wrappers (the paper's main source of missed pairings when
// barrier and accesses live in different files).
//
// # The lattice
//
// Kinds form a diamond lattice ordered by "how much the function orders":
//
//	    full
//	   /    \
//	read    write
//	   \    /
//	    none
//
// join(read, write) = full (executing both orders both); meet(read, write)
// = none (a path guaranteed only one of them guarantees neither to a caller
// that needs both).
//
// # The analysis
//
// Per function, a forward MUST dataflow over the control-flow graph
// (internal/cfg): in(b) is the meet over predecessors' out (entry starts at
// none — nothing has executed), out(b) joins in(b) with the barriers the
// block itself executes. The function's kind is the meet over all exit
// blocks — the ordering guaranteed on EVERY path. Blocks start at full
// (top) and only descend, so the inner fixpoint terminates.
//
// Interprocedurally, all functions start at none and the per-function
// analysis is re-run — calls contributing their callee's current kind —
// until nothing changes. Kinds only ascend (the transfer function is
// monotone in the callee kinds), each function can ascend at most twice
// (none -> read/write -> full), so the outer fixpoint terminates within
// 2*|functions|+1 rounds. Recursive and mutually recursive functions are
// handled by the same iteration: they start at none (a sound
// under-approximation) and stabilize like every other node. Calls through
// unresolved function pointers contribute none — degrading to the paper's
// intraprocedural behavior, never erroring.
package semprop

import (
	"sort"

	"ofence/internal/callgraph"
	"ofence/internal/cast"
	"ofence/internal/cfg"
	"ofence/internal/memmodel"
)

// join is the least upper bound of the kind lattice.
func join(a, b memmodel.BarrierKind) memmodel.BarrierKind {
	if a == b {
		return a
	}
	if a == memmodel.None {
		return b
	}
	if b == memmodel.None {
		return a
	}
	return memmodel.FullBarrier // read ∨ write, or anything ∨ full
}

// meet is the greatest lower bound of the kind lattice.
func meet(a, b memmodel.BarrierKind) memmodel.BarrierKind {
	if a == b {
		return a
	}
	if a == memmodel.FullBarrier {
		return b
	}
	if b == memmodel.FullBarrier {
		return a
	}
	return memmodel.None // read ∧ write, or anything ∧ none
}

// Options configures the inference.
type Options struct {
	// ExtraFull lists functions assumed to imply a full barrier, mirroring
	// access.Options.ExtraBarrierSemantics (user extensions of Table 2).
	ExtraFull []string
	// MaxRounds bounds the interprocedural fixpoint; 0 derives the
	// theoretical bound 2*|functions|+1. Setting it forces the legacy
	// global round-robin schedule (the SCC schedule has no meaningful
	// global round count to bound).
	MaxRounds int
	// Workers bounds the SCC schedule's parallelism (0 = GOMAXPROCS).
	Workers int
	// Sequential forces the legacy whole-graph round-robin fixpoint. The
	// differential tests and the tree-scale benchmark use it as the
	// oracle; production callers leave it false and get the SCC schedule.
	Sequential bool
}

// InferredFn is one function with inferred barrier semantics.
type InferredFn struct {
	Name string
	File string
	Kind memmodel.BarrierKind
	// Known marks functions already in the built-in memmodel catalog
	// (Table 1 or Table 2) — inference re-derived them rather than
	// discovering something new.
	Known bool
}

// Inference is the fixpoint result.
type Inference struct {
	Graph *callgraph.Graph
	// Rounds is how many interprocedural passes ran.
	Rounds int
	// Converged reports whether a fixpoint was reached within the round
	// bound (always true for the derived bound; false only when a smaller
	// MaxRounds cut iteration short).
	Converged bool
	// Components is the number of strongly connected components the SCC
	// schedule processed; 0 when the legacy sequential loop ran.
	Components int
	// Levels is the depth of the condensation's topological levelling the
	// SCC schedule walked; 0 when the legacy sequential loop ran.
	Levels int

	kinds map[*callgraph.Node]memmodel.BarrierKind
}

// Kind returns the inferred kind for a graph node.
func (inf *Inference) Kind(n *callgraph.Node) memmodel.BarrierKind { return inf.kinds[n] }

// Functions returns every function with non-none inferred semantics, sorted
// by (name, file) for deterministic reports.
func (inf *Inference) Functions() []InferredFn {
	var out []InferredFn
	for n, k := range inf.kinds {
		if k == memmodel.None {
			continue
		}
		known := memmodel.IsBarrier(n.Name()) || memmodel.Lookup(n.Name()) != nil ||
			memmodel.SeqcountKind(n.Name()) != memmodel.None
		out = append(out, InferredFn{Name: n.Name(), File: n.File, Kind: k, Known: known})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].File < out[j].File
	})
	return out
}

// NameKinds flattens the inference to a name-keyed map for extraction
// (access.Options.InferredSemantics). When several definitions share a name
// (file-local statics), the meet is taken — the semantics any call site can
// rely on regardless of which definition it binds to. Names with kind none
// are omitted.
func (inf *Inference) NameKinds() map[string]memmodel.BarrierKind {
	byName := map[string]memmodel.BarrierKind{}
	seen := map[string]bool{}
	for n, k := range inf.kinds {
		name := n.Name()
		if !seen[name] {
			seen[name] = true
			byName[name] = k
			continue
		}
		byName[name] = meet(byName[name], k)
	}
	for name, k := range byName {
		if k == memmodel.None {
			delete(byName, name)
		}
	}
	return byName
}

// InferredOnly returns the names whose barrier semantics exist ONLY by
// inference — functions the fixpoint classified as implicit barriers that
// the built-in memmodel catalog does not list. Orderings resting on these
// names carry extra uncertainty, which the confidence ranker
// (internal/rank) discounts. The input is Result.Inferred; a nil slice
// (depth 0) yields an empty map.
func InferredOnly(fns []InferredFn) map[string]bool {
	out := make(map[string]bool, len(fns))
	for _, f := range fns {
		if !f.Known {
			out[f.Name] = true
		}
	}
	return out
}

// fnInfo is the per-function precomputation reused across fixpoint rounds.
type fnInfo struct {
	graph *cfg.Graph
	// static is each block's barrier contribution from the catalogs alone.
	static []memmodel.BarrierKind
	// dynamic lists, per block, the resolved call candidates whose inferred
	// kinds contribute on re-evaluation.
	dynamic [][][]*callgraph.Node
	// exits are the reachable no-successor block IDs.
	exits []int
	preds [][]int
	// dynIdx mirrors dynamic with dense node indices into the SCC
	// schedule's kind slice; nil on the legacy sequential path.
	dynIdx [][][]int32
}

// Infer runs the interprocedural fixpoint over g. By default the fixpoint
// is scheduled over the Tarjan condensation (see parallel.go): each
// strongly connected component is evaluated to its local fixpoint exactly
// once, in topological order, with independent components of a level
// running concurrently. Setting Options.Sequential — or bounding
// Options.MaxRounds, which only means something for global rounds — runs
// the legacy whole-graph round-robin instead. Both reach the same least
// fixpoint: the transfer function is monotone over a finite lattice, so
// chaotic iteration converges to a unique result regardless of evaluation
// order.
func Infer(g *callgraph.Graph, opts Options) *Inference {
	extra := map[string]bool{}
	for _, name := range opts.ExtraFull {
		extra[name] = true
	}
	inf := &Inference{Graph: g, kinds: map[*callgraph.Node]memmodel.BarrierKind{}}
	if opts.Sequential || opts.MaxRounds > 0 {
		inferRounds(g, opts, extra, inf)
	} else {
		inferSCC(g, opts, extra, inf)
	}
	return inf
}

// inferRounds is the legacy global round-robin fixpoint, kept verbatim as
// the differential oracle and the MaxRounds-bounded mode.
func inferRounds(g *callgraph.Graph, opts Options, extra map[string]bool, inf *Inference) {
	infos := make([]*fnInfo, len(g.Nodes))
	for i, n := range g.Nodes {
		infos[i] = precompute(n, extra)
	}
	for _, n := range g.Nodes {
		inf.kinds[n] = memmodel.None
	}

	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 2*len(g.Nodes) + 1
	}
	changed := true
	for changed && inf.Rounds < maxRounds {
		changed = false
		inf.Rounds++
		for i, n := range g.Nodes {
			k := evaluate(infos[i], inf.kinds)
			if k != inf.kinds[n] {
				inf.kinds[n] = k
				changed = true
			}
		}
	}
	inf.Converged = !changed
}

// precompute builds the CFG and splits each block's barrier contribution
// into the static part (catalog lookups, fixed across rounds) and the
// dynamic part (resolved callees whose kinds evolve).
func precompute(n *callgraph.Node, extra map[string]bool) *fnInfo {
	g := cfg.Build(n.Fn)
	info := &fnInfo{
		graph:   g,
		static:  make([]memmodel.BarrierKind, len(g.Blocks)),
		dynamic: make([][][]*callgraph.Node, len(g.Blocks)),
	}

	// Candidate targets per call site, from the resolved edges.
	cands := map[*cast.CallExpr][]*callgraph.Node{}
	for _, e := range n.Calls {
		cands[e.Call] = append(cands[e.Call], e.Callee)
	}

	for bi, blk := range g.Blocks {
		for _, u := range blk.Units {
			root := u.Root()
			if root == nil {
				continue
			}
			for _, call := range cast.Calls(root) {
				// A call resolved to definitions is judged by those
				// definitions — re-derived, not hardcoded.
				if cs := cands[call]; len(cs) > 0 {
					info.dynamic[bi] = append(info.dynamic[bi], cs)
					continue
				}
				name := call.FunName()
				if name == "" {
					continue // unresolved pointer call: contributes none
				}
				switch {
				case memmodel.Barrier(name) != nil:
					info.static[bi] = join(info.static[bi], memmodel.Barrier(name).Kind)
				case memmodel.SeqcountKind(name) != memmodel.None:
					info.static[bi] = join(info.static[bi], memmodel.SeqcountKind(name))
				case memmodel.HasBarrierSemantics(name) || extra[name]:
					info.static[bi] = join(info.static[bi], memmodel.FullBarrier)
				}
			}
		}
	}

	reach := g.Reachable()
	for id := range g.Blocks {
		if reach[id] && len(g.Blocks[id].Succs) == 0 {
			info.exits = append(info.exits, id)
		}
	}
	info.preds = make([][]int, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			info.preds[s.ID] = append(info.preds[s.ID], blk.ID)
		}
	}
	return info
}

// evaluate runs the per-function MUST dataflow under the current
// interprocedural kinds and returns the function's barrier kind.
func evaluate(info *fnInfo, cur map[*callgraph.Node]memmodel.BarrierKind) memmodel.BarrierKind {
	nb := len(info.graph.Blocks)
	if nb == 0 || len(info.exits) == 0 {
		return memmodel.None
	}

	// blockKind = static ∨ (for each dynamic call site, the meet over its
	// candidate targets: the semantics guaranteed whichever binds).
	blockKind := func(bi int) memmodel.BarrierKind {
		k := info.static[bi]
		for _, cs := range info.dynamic[bi] {
			ck := memmodel.FullBarrier
			for _, c := range cs {
				ck = meet(ck, cur[c])
			}
			k = join(k, ck)
		}
		return k
	}

	out := make([]memmodel.BarrierKind, nb)
	for i := range out {
		out[i] = memmodel.FullBarrier // top: optimistic for a must-analysis
	}
	// Iterate to the inner fixpoint; values only descend.
	for changed := true; changed; {
		changed = false
		for bi := 0; bi < nb; bi++ {
			in := memmodel.None
			if bi != 0 { // entry keeps in = none: nothing executed yet
				if ps := info.preds[bi]; len(ps) > 0 {
					in = memmodel.FullBarrier
					for _, p := range ps {
						in = meet(in, out[p])
					}
				}
			}
			o := join(in, blockKind(bi))
			if o != out[bi] {
				out[bi] = o
				changed = true
			}
		}
	}

	k := memmodel.FullBarrier
	for _, e := range info.exits {
		k = meet(k, out[e])
	}
	return k
}
