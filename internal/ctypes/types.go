// Package ctypes resolves the types of expressions in the parsed C subset.
//
// OFence identifies shared objects by the tuple (typeof(struct),
// nameof(field)); this package provides exactly that resolution: it builds
// symbol tables from a file's struct, typedef, variable and function
// declarations, then infers the struct type behind each FieldExpr, following
// pointers, array indexing, casts, typedefs and local variable declarations.
package ctypes

import (
	"ofence/internal/cast"
)

// Type is a resolved semantic type.
type Type struct {
	// Kind discriminates the representation.
	Kind Kind
	// Name is the base name for Basic types and the struct tag for Struct
	// types ("" for unresolved).
	Name string
	// Elem is the pointee/element type for Pointer and Array.
	Elem *Type
	// Union marks a union rather than a struct.
	Union bool
}

// Kind classifies a resolved type.
type Kind int

const (
	// Unknown is an unresolvable type; analysis degrades gracefully.
	Unknown Kind = iota
	// Basic is an integer/float/char/void scalar or a typedef of one.
	Basic
	// Struct is a struct or union type, identified by tag.
	Struct
	// Pointer is a pointer to Elem.
	Pointer
	// Array is an array of Elem.
	Array
	// Func is a function (only its existence matters here).
	Func
)

// String renders the type for diagnostics.
func (t *Type) String() string {
	if t == nil {
		return "?"
	}
	switch t.Kind {
	case Basic:
		return t.Name
	case Struct:
		kw := "struct"
		if t.Union {
			kw = "union"
		}
		return kw + " " + t.Name
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		return t.Elem.String() + "[]"
	case Func:
		return "func"
	}
	return "?"
}

// Deref strips pointers and arrays down to the base type.
func (t *Type) Deref() *Type {
	for t != nil && (t.Kind == Pointer || t.Kind == Array) {
		t = t.Elem
	}
	return t
}

// StructTag returns the struct tag when t (possibly behind pointers/arrays)
// is a struct type, else "".
func (t *Type) StructTag() string {
	d := t.Deref()
	if d != nil && d.Kind == Struct {
		return d.Name
	}
	return ""
}

// Table holds the declarations visible in one translation unit.
type Table struct {
	structs  map[string]*cast.StructDecl
	typedefs map[string]*cast.TypeExpr
	// typedefStruct maps a typedef name directly to a struct tag when the
	// typedef wraps a struct (possibly anonymous).
	typedefStruct map[string]string
	globals       map[string]*Type
	funcs         map[string]*cast.FuncDecl
}

// NewTable builds the symbol tables for file. Multiple files may be merged
// by calling Add on the same table (headers shared across the corpus).
func NewTable(files ...*cast.File) *Table {
	t := &Table{
		structs:       map[string]*cast.StructDecl{},
		typedefs:      map[string]*cast.TypeExpr{},
		typedefStruct: map[string]string{},
		globals:       map[string]*Type{},
		funcs:         map[string]*cast.FuncDecl{},
	}
	for _, f := range files {
		t.Add(f)
	}
	return t
}

// Add merges file's declarations into the table.
func (t *Table) Add(f *cast.File) {
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *cast.StructDecl:
			if x.Tag != "" {
				t.structs[x.Tag] = x
			}
		case *cast.TypedefDecl:
			t.typedefs[x.Name] = x.Type
			if x.Struct != nil {
				if x.Struct.Tag != "" {
					t.structs[x.Struct.Tag] = x.Struct
				}
				t.typedefStruct[x.Name] = x.Struct.Tag
			} else if x.Type != nil && x.Type.Struct != "" && x.Type.Pointers == 0 {
				t.typedefStruct[x.Name] = x.Type.Struct
			}
		case *cast.VarDecl:
			t.globals[x.Name] = t.Resolve(x.Type)
		case *cast.FuncDecl:
			t.funcs[x.Name] = x
		}
	}
}

// Struct returns the declaration of struct tag, or nil.
func (t *Table) Struct(tag string) *cast.StructDecl { return t.structs[tag] }

// Func returns the declaration of the named function, or nil.
func (t *Table) Func(name string) *cast.FuncDecl { return t.funcs[name] }

// Funcs returns the function table.
func (t *Table) Funcs() map[string]*cast.FuncDecl { return t.funcs }

// Resolve converts a syntactic TypeExpr to a semantic Type, following
// typedefs.
func (t *Table) Resolve(te *cast.TypeExpr) *Type {
	if te == nil {
		return &Type{Kind: Unknown}
	}
	var base *Type
	switch {
	case te.Struct != "":
		base = &Type{Kind: Struct, Name: te.Struct, Union: te.Union}
	case te.Name != "":
		if tag, ok := t.typedefStruct[te.Name]; ok {
			base = &Type{Kind: Struct, Name: tag}
		} else if under, ok := t.typedefs[te.Name]; ok && under != nil {
			base = t.Resolve(under)
		} else {
			base = &Type{Kind: Basic, Name: te.Name}
		}
	default:
		base = &Type{Kind: Unknown}
	}
	for i := 0; i < te.ArrayDims; i++ {
		base = &Type{Kind: Array, Elem: base}
	}
	for i := 0; i < te.Pointers; i++ {
		base = &Type{Kind: Pointer, Elem: base}
	}
	return base
}

// FieldType returns the declared type of field name in struct tag, or nil.
func (t *Table) FieldType(tag, field string) *Type {
	sd := t.structs[tag]
	if sd == nil {
		return nil
	}
	for _, fd := range sd.Fields {
		if fd.Name == field {
			return t.Resolve(fd.Type)
		}
	}
	return nil
}

// Scope resolves local names within one function.
type Scope struct {
	table  *Table
	fn     *cast.FuncDecl
	locals map[string]*Type
}

// NewScope builds the local symbol table for fn: parameters plus every local
// declaration in the body (C block scoping is flattened — sufficient for the
// analysis, which only needs field typing).
func (t *Table) NewScope(fn *cast.FuncDecl) *Scope {
	s := &Scope{table: t, fn: fn, locals: map[string]*Type{}}
	for _, p := range fn.Params {
		if p.Name != "" {
			s.locals[p.Name] = t.Resolve(p.Type)
		}
	}
	if fn.Body != nil {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if ds, ok := n.(*cast.DeclStmt); ok && ds.Name != "" {
				s.locals[ds.Name] = t.Resolve(ds.Type)
			}
			return true
		})
	}
	return s
}

// Lookup resolves a name: locals shadow globals.
func (s *Scope) Lookup(name string) *Type {
	if ty, ok := s.locals[name]; ok {
		return ty
	}
	if ty, ok := s.table.globals[name]; ok {
		return ty
	}
	return nil
}

// ExprType infers the type of e within the scope. Unresolvable expressions
// yield Unknown, never nil.
func (s *Scope) ExprType(e cast.Expr) *Type {
	unknown := &Type{Kind: Unknown}
	switch x := e.(type) {
	case *cast.Ident:
		if ty := s.Lookup(x.Name); ty != nil {
			return ty
		}
		if s.table.funcs[x.Name] != nil {
			return &Type{Kind: Func, Name: x.Name}
		}
		return unknown
	case *cast.Lit:
		return &Type{Kind: Basic, Name: "int"}
	case *cast.FieldExpr:
		base := s.ExprType(x.X)
		d := base.Deref()
		if d == nil || d.Kind != Struct {
			return unknown
		}
		if ft := s.table.FieldType(d.Name, x.Name); ft != nil {
			return ft
		}
		return unknown
	case *cast.IndexExpr:
		base := s.ExprType(x.X)
		if base.Kind == Pointer || base.Kind == Array {
			return base.Elem
		}
		return unknown
	case *cast.UnaryExpr:
		switch {
		case x.Sizeof:
			return &Type{Kind: Basic, Name: "unsigned long"}
		case x.Op.String() == "*":
			base := s.ExprType(x.X)
			if base.Kind == Pointer || base.Kind == Array {
				return base.Elem
			}
			return unknown
		case x.Op.String() == "&":
			return &Type{Kind: Pointer, Elem: s.ExprType(x.X)}
		default:
			return s.ExprType(x.X)
		}
	case *cast.PostfixExpr:
		return s.ExprType(x.X)
	case *cast.BinaryExpr:
		// Pointer arithmetic keeps the pointer type; otherwise scalar.
		lt := s.ExprType(x.X)
		if lt.Kind == Pointer || lt.Kind == Array {
			return lt
		}
		rt := s.ExprType(x.Y)
		if rt.Kind == Pointer || rt.Kind == Array {
			return rt
		}
		return &Type{Kind: Basic, Name: "int"}
	case *cast.AssignExpr:
		return s.ExprType(x.X)
	case *cast.CondExpr:
		return s.ExprType(x.Then)
	case *cast.CastExpr:
		return s.table.Resolve(x.Type)
	case *cast.CommaExpr:
		return s.ExprType(x.Y)
	case *cast.CallExpr:
		if name := x.FunName(); name != "" {
			if fd := s.table.funcs[name]; fd != nil {
				return s.table.Resolve(fd.Result)
			}
		}
		return unknown
	case *cast.SizeofTypeExpr:
		return &Type{Kind: Basic, Name: "unsigned long"}
	case *cast.StmtExpr:
		// Value of the last expression statement in the block.
		if x.Block != nil && len(x.Block.Stmts) > 0 {
			if es, ok := x.Block.Stmts[len(x.Block.Stmts)-1].(*cast.ExprStmt); ok {
				return s.ExprType(es.X)
			}
		}
		return unknown
	}
	return unknown
}

// FieldOwner resolves the struct tag that owns the field access fe: for
// "p->f" it is the struct behind p's type; for "s.f" the struct of s.
// Returns "" when unresolvable.
func (s *Scope) FieldOwner(fe *cast.FieldExpr) string {
	return s.ExprType(fe.X).StructTag()
}
