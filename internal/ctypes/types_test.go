package ctypes

import (
	"testing"

	"ofence/internal/cast"
	"ofence/internal/cparser"
	"ofence/internal/cpp"
)

func parseFile(t *testing.T, src string) *cast.File {
	t.Helper()
	f, errs := cparser.ParseSource("test.c", src, cpp.Options{})
	for _, err := range errs {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

const typeSrc = `
struct inner { int z; };
struct my_struct {
	int x;
	int init;
	struct inner *in;
	struct inner direct;
	int arr[8];
	struct my_struct *next;
};
typedef struct my_struct ms_t;
typedef struct { unsigned sequence; } seq_t;
typedef unsigned long ulong_t;
struct my_struct global_s;
struct my_struct *global_p;
ulong_t global_u;

int helper(struct inner *p);
struct inner *get_inner(void);

void fn(struct my_struct *a, ms_t *b, seq_t *s) {
	struct my_struct local;
	struct inner *ip = a->in;
	int v;
	v = a->x;
	use(b, s, local, ip, v);
}
`

func buildScope(t *testing.T) (*Table, *Scope, *cast.File) {
	t.Helper()
	f := parseFile(t, typeSrc)
	tbl := NewTable(f)
	fn := f.Function("fn")
	if fn == nil {
		t.Fatal("fn not found")
	}
	return tbl, tbl.NewScope(fn), f
}

func TestResolveStruct(t *testing.T) {
	tbl, _, _ := buildScope(t)
	if tbl.Struct("my_struct") == nil {
		t.Fatal("my_struct not registered")
	}
	if tbl.Struct("inner") == nil {
		t.Fatal("inner not registered")
	}
	ft := tbl.FieldType("my_struct", "in")
	if ft == nil || ft.Kind != Pointer || ft.Elem.StructTag() != "inner" {
		t.Errorf("in: %v", ft)
	}
	if tbl.FieldType("my_struct", "nosuch") != nil {
		t.Error("nonexistent field resolved")
	}
	if tbl.FieldType("nostruct", "x") != nil {
		t.Error("nonexistent struct resolved")
	}
}

func TestResolveTypedefs(t *testing.T) {
	tbl, _, _ := buildScope(t)
	ty := tbl.Resolve(&cast.TypeExpr{Name: "ms_t", Pointers: 1})
	if ty.Kind != Pointer || ty.Elem.StructTag() != "my_struct" {
		t.Errorf("ms_t* = %v", ty)
	}
	ty = tbl.Resolve(&cast.TypeExpr{Name: "seq_t"})
	if ty.StructTag() != "seq_t" {
		t.Errorf("seq_t = %v (anonymous struct named by typedef)", ty)
	}
	ty = tbl.Resolve(&cast.TypeExpr{Name: "ulong_t"})
	if ty.Kind != Basic || ty.Name != "unsigned long" {
		t.Errorf("ulong_t = %v", ty)
	}
}

func TestScopeLookup(t *testing.T) {
	_, sc, _ := buildScope(t)
	if ty := sc.Lookup("a"); ty == nil || ty.StructTag() != "my_struct" {
		t.Errorf("a = %v", ty)
	}
	if ty := sc.Lookup("local"); ty == nil || ty.Kind != Struct {
		t.Errorf("local = %v", ty)
	}
	if ty := sc.Lookup("ip"); ty == nil || ty.StructTag() != "inner" {
		t.Errorf("ip = %v", ty)
	}
	if ty := sc.Lookup("global_u"); ty == nil || ty.Kind != Basic {
		t.Errorf("global_u = %v", ty)
	}
	if sc.Lookup("nosuch") != nil {
		t.Error("nonexistent name resolved")
	}
}

func exprOf(t *testing.T, src string) (cast.Expr, *Scope) {
	t.Helper()
	full := typeSrc + "\nvoid probe(struct my_struct *a, ms_t *b, seq_t *s) { sink(" + src + "); }"
	f := parseFile(t, full)
	tbl := NewTable(f)
	fn := f.Function("probe")
	call := cast.Calls(fn.Body)[len(cast.Calls(fn.Body))-1]
	// sink(...) is the last call; its single argument is the probe expr.
	for _, c := range cast.Calls(fn.Body) {
		if c.FunName() == "sink" {
			call = c
		}
	}
	if call.FunName() != "sink" || len(call.Args) != 1 {
		t.Fatalf("bad probe: %+v", call)
	}
	return call.Args[0], tbl.NewScope(fn)
}

func TestExprTypes(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"a->x", "int"},
		{"a->in", "struct inner*"},
		{"a->in->z", "int"},
		{"a->direct.z", "int"},
		{"a->arr[3]", "int"},
		{"a->next->next->x", "int"},
		{"b->init", "int"},          // typedef pointer to struct
		{"s->sequence", "unsigned"}, // anonymous typedef struct
		{"*a->in", "struct inner"},
		{"&a->x", "int*"},
		{"(struct inner *)a", "struct inner*"},
		{"a->x + 1", "int"},
		{"a->x ? a->in : a->in", "struct inner*"},
		{"sizeof(struct inner)", "unsigned long"},
		{"get_inner()", "struct inner*"},
		{"helper(a->in)", "int"},
	}
	for _, c := range cases {
		e, sc := exprOf(t, c.expr)
		got := sc.ExprType(e).String()
		if got != c.want {
			t.Errorf("typeof(%s) = %s, want %s", c.expr, got, c.want)
		}
	}
}

func TestFieldOwner(t *testing.T) {
	cases := []struct {
		expr  string
		owner string
	}{
		{"a->x", "my_struct"},
		{"a->in->z", "inner"},
		{"a->direct.z", "inner"},
		{"b->init", "my_struct"},
		{"s->sequence", "seq_t"},
		{"a->next->init", "my_struct"},
	}
	for _, c := range cases {
		e, sc := exprOf(t, c.expr)
		fe, ok := e.(*cast.FieldExpr)
		if !ok {
			t.Fatalf("%s: not a field expr: %T", c.expr, e)
		}
		if got := sc.FieldOwner(fe); got != c.owner {
			t.Errorf("owner(%s) = %q, want %q", c.expr, got, c.owner)
		}
	}
}

func TestFieldOwnerUnknown(t *testing.T) {
	e, sc := exprOf(t, "unknown_var->f")
	fe := e.(*cast.FieldExpr)
	if got := sc.FieldOwner(fe); got != "" {
		t.Errorf("owner of unknown var = %q, want empty", got)
	}
}

func TestUnknownNeverNil(t *testing.T) {
	_, sc, _ := buildScope(t)
	if ty := sc.ExprType(&cast.Ident{Name: "zzz"}); ty == nil || ty.Kind != Unknown {
		t.Errorf("unknown ident type = %v", ty)
	}
}

func TestDeref(t *testing.T) {
	ty := &Type{Kind: Pointer, Elem: &Type{Kind: Array, Elem: &Type{Kind: Struct, Name: "s"}}}
	if ty.Deref().Name != "s" {
		t.Errorf("Deref = %v", ty.Deref())
	}
	if ty.StructTag() != "s" {
		t.Errorf("StructTag = %q", ty.StructTag())
	}
	var nilType *Type
	if nilType.String() != "?" {
		t.Error("nil type String")
	}
}

func TestMergeMultipleFiles(t *testing.T) {
	hdr := parseFile(t, "struct shared { int f; };")
	src := parseFile(t, "void g(struct shared *p) { use(p->f); }")
	tbl := NewTable(hdr, src)
	fn := src.Function("g")
	sc := tbl.NewScope(fn)
	fe := cast.FieldAccesses(fn)[0]
	if sc.FieldOwner(fe) != "shared" {
		t.Error("cross-file struct not resolved")
	}
}

func TestTypedefChain(t *testing.T) {
	f := parseFile(t, `
typedef unsigned long base_t;
typedef base_t mid_t;
typedef mid_t top_t;
top_t v;`)
	tbl := NewTable(f)
	ty := tbl.Resolve(&cast.TypeExpr{Name: "top_t"})
	if ty.Kind != Basic || ty.Name != "unsigned long" {
		t.Errorf("chained typedef = %v", ty)
	}
}

func TestTypedefPointerToStruct(t *testing.T) {
	f := parseFile(t, `
struct real { int fld; };
typedef struct real *realp_t;
void fn(realp_t p) { use(p->fld); }`)
	tbl := NewTable(f)
	fn := f.Function("fn")
	sc := tbl.NewScope(fn)
	fe := cast.FieldAccesses(fn)[0]
	if got := sc.FieldOwner(fe); got != "real" {
		t.Errorf("owner through pointer typedef = %q", got)
	}
}

func TestArrayOfStructs(t *testing.T) {
	f := parseFile(t, `
struct slot { long v; };
struct table { struct slot slots[8]; int n; };
void fn(struct table *t) { use(t->slots[t->n].v); }`)
	tbl := NewTable(f)
	fn := f.Function("fn")
	sc := tbl.NewScope(fn)
	owners := map[string]bool{}
	for _, fe := range cast.FieldAccesses(fn) {
		owners[sc.FieldOwner(fe)+"."+fe.Name] = true
	}
	for _, want := range []string{"table.slots", "table.n", "slot.v"} {
		if !owners[want] {
			t.Errorf("missing access %s in %v", want, owners)
		}
	}
}

func TestUnionFieldResolution(t *testing.T) {
	f := parseFile(t, `
union uval { long l; double d; };
struct holder { union uval u; int tag; };
void fn(struct holder *h) { use(h->u.l, h->tag); }`)
	tbl := NewTable(f)
	fn := f.Function("fn")
	sc := tbl.NewScope(fn)
	found := false
	for _, fe := range cast.FieldAccesses(fn) {
		if fe.Name == "l" && sc.FieldOwner(fe) == "uval" {
			found = true
		}
	}
	if !found {
		t.Error("union field not resolved")
	}
}

func TestDoublePointer(t *testing.T) {
	f := parseFile(t, `
struct node { struct node *next; int key; };
void fn(struct node **head) { use((*head)->key); }`)
	tbl := NewTable(f)
	fn := f.Function("fn")
	sc := tbl.NewScope(fn)
	fe := cast.FieldAccesses(fn)[0]
	if got := sc.FieldOwner(fe); got != "node" {
		t.Errorf("owner through double pointer deref = %q", got)
	}
}

func TestShadowingLocalOverGlobal(t *testing.T) {
	f := parseFile(t, `
struct a { int fa; };
struct b { int fb; };
struct a *shared;
void fn(void) {
	struct b *shared;
	use(shared->fb);
}`)
	tbl := NewTable(f)
	fn := f.Function("fn")
	sc := tbl.NewScope(fn)
	fe := cast.FieldAccesses(fn)[0]
	if got := sc.FieldOwner(fe); got != "b" {
		t.Errorf("local shadow lost: owner = %q", got)
	}
}
