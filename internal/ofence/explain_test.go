package ofence

import (
	"strings"
	"testing"
)

func TestExplainPairing(t *testing.T) {
	res := one(t, listing1)
	if len(res.Pairings) != 1 {
		t.Fatal("need one pairing")
	}
	out := ExplainPairing(res.Pairings[0])
	for _, want := range []string{
		"pairing of 2 barriers",
		"(my_struct, init)", "(my_struct, y)",
		"smp_wmb in writer", "smp_rmb in reader",
		"store of (my_struct, y)", "load  of (my_struct, y)",
		"before barrier", "after barrier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainResult(t *testing.T) {
	src := listing1 + `
struct lonely { long q0; long q1; };
void lonely_fn(struct lonely *p) {
	p->q0 = 1;
	smp_mb();
	p->q1 = 2;
}
struct ipcw { long w0; long w1; struct task_struct *t; };
void ipc_writer(struct ipcw *p) {
	p->w0 = 1;
	p->w1 = 2;
	smp_wmb();
	wake_up_process(p->t);
}`
	res := one(t, src)
	out := ExplainResult(res)
	for _, want := range []string{
		"pairings", "#1 pairing",
		"unpaired barriers", "lonely_fn",
		"implicit-IPC writers", "ipc_writer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("result explanation missing %q:\n%s", want, out)
		}
	}
}
