package ofence_test

import (
	"testing"
	"testing/quick"

	"ofence/internal/access"
	"ofence/internal/corpus"
	ofence "ofence/internal/ofence"
)

// Structural invariants of the pairing algorithm, checked over randomly
// seeded corpora.

func analyzeCorpusSeed(seed int64) (*ofence.Result, *corpus.Corpus) {
	cfg := corpus.DefaultConfig(seed)
	cfg.Counts = map[corpus.PatternKind]int{
		corpus.InitFlag:     10,
		corpus.Seqcount:     2,
		corpus.ImplicitIPC:  3,
		corpus.Unneeded:     2,
		corpus.Misplaced:    2,
		corpus.RepeatedRead: 1,
		corpus.WrongType:    1,
		corpus.LockPaired:   8,
		corpus.AcqRel:       4,
		corpus.GenericDecoy: 2,
		corpus.Noise:        8,
	}
	c := corpus.Generate(cfg)
	p := ofence.NewProject()
	for _, name := range c.Order {
		p.AddSource(name, c.Files[name])
	}
	return p.Analyze(ofence.DefaultOptions()), c
}

func TestQuickPairingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		res, _ := analyzeCorpusSeed(seed % 1000)

		// 1. Site partition: every site is in exactly one of {paired,
		// unpaired, implicit}.
		seen := map[*access.Site]int{}
		for _, pg := range res.Pairings {
			for _, s := range pg.Sites {
				seen[s]++
			}
		}
		for _, s := range res.Unpaired {
			seen[s] += 100
		}
		for _, s := range res.ImplicitIPC {
			seen[s] += 10000
		}
		for _, s := range res.Sites {
			switch seen[s] {
			case 1, 100, 10000:
			default:
				t.Logf("site %v classified %d times", s, seen[s])
				return false
			}
		}

		// 2. Every pairing has >= 2 sites, >= MinSharedObjects common
		// objects, and a positive weight.
		for _, pg := range res.Pairings {
			if len(pg.Sites) < 2 || len(pg.Common) < 2 || pg.Weight <= 0 {
				t.Logf("malformed pairing: %v (common=%v weight=%d)", pg, pg.Common, pg.Weight)
				return false
			}
			// 3. Every member site accesses every common object.
			for _, s := range pg.Sites {
				objs := s.Objects()
				for _, o := range pg.Common {
					if _, ok := objs[o]; !ok {
						t.Logf("site %v lacks common object %v", s, o)
						return false
					}
				}
			}
			// 4. The pairing origin is a write-side barrier.
			if !pg.Writer().Kind.OrdersWrites() {
				t.Logf("pairing origin %v is not write-side", pg.Writer())
				return false
			}
			// 5. No generic-struct objects in the common set.
			for _, o := range pg.Common {
				if o.Struct == "list_head" {
					t.Logf("generic object %v paired", o)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnalysisDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		res1, _ := analyzeCorpusSeed(seed % 500)
		res2, _ := analyzeCorpusSeed(seed % 500)
		if len(res1.Pairings) != len(res2.Pairings) || len(res1.Findings) != len(res2.Findings) {
			return false
		}
		for i := range res1.Findings {
			if res1.Findings[i].String() != res2.Findings[i].String() {
				return false
			}
		}
		for i := range res1.Pairings {
			if res1.Pairings[i].String() != res2.Pairings[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestQuickFindingsReferenceValidSites(t *testing.T) {
	f := func(seed int64) bool {
		res, _ := analyzeCorpusSeed(seed % 300)
		valid := map[*access.Site]bool{}
		for _, s := range res.Sites {
			valid[s] = true
		}
		for _, fd := range res.Findings {
			if !valid[fd.Site] {
				return false
			}
			if fd.Pairing != nil {
				member := false
				for _, s := range fd.Pairing.Sites {
					if s == fd.Site {
						member = true
					}
				}
				if !member {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
