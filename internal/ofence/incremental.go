// Incremental per-file pipeline: every FileUnit carries an immutable record
// of its per-stage artifacts (preprocess → parse → cfg → extract), each
// memoized in a content-addressed stage cache (internal/rescache.Stages)
// shared by a Project and all of its clones.
//
// Keying rules:
//
//   - preprocess: SHA-256(environment hash × file name × raw source). The
//     environment hash folds in every header and #define, so a macro change
//     re-keys (dirties) every file.
//   - parse, cfg: the preprocess artifact's content fingerprint (tokens,
//     positions and diagnostics) — whitespace/comment-only edits hash
//     identically and reuse everything downstream.
//   - extract: the parse fingerprint × the options fingerprint, plus — in
//     interprocedural mode — the content hash of the file's transitive
//     call-graph dependency closure, so editing a callee conservatively
//     re-extracts every (transitive) caller instead of reusing sites built
//     over stale inferred semantics.
//
// Artifact records are copy-on-write: recomputing a stage swaps in a fresh
// record on this project's unit and never mutates the shared one, so a
// clone analyzed concurrently keeps a consistent view. Correctness bar
// (asserted by equivalence_test.go): an incremental re-analysis produces
// byte-identical Result JSON to a cold analysis of the same sources.
package ofence

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ofence/internal/access"
	"ofence/internal/cast"
	"ofence/internal/cparser"
	"ofence/internal/cpp"
	"ofence/internal/ctoken"
	"ofence/internal/ctypes"
	"ofence/internal/obs"
	"ofence/internal/rescache"
)

// Stage-cache names, one per per-file pipeline stage.
const (
	stagePreprocess = "preprocess"
	stageParse      = "parse"
	stageCfg        = "cfg"
	stageExtract    = "extract"
)

// artifacts is one file's immutable per-stage pipeline record. A record is
// never mutated after publication: recomputation builds a new record and
// swaps the unit's pointer under the project lock (copy-on-write), so
// records may be shared freely between a project and its clones.
type artifacts struct {
	// preHash is the content address of the preprocessed token stream
	// (cpp.Result.Fingerprint): the key every downstream stage derives from.
	preHash string
	// ast and errs are the parse-stage outputs (errs combines preprocessor
	// and parser diagnostics, as AddSource has always reported them).
	ast  *cast.File
	errs []error
	// tokens and arenaBytes are frontend cost meters: the preprocessed token
	// count and the parser's AST arena footprint, recorded when the stages
	// ran and carried through cache hits for the frontend.* obs counters.
	tokens     int
	arenaBytes int64
	// table is the cfg-stage symbol table; nil until the first Analyze.
	table *ctypes.Table
	// sitesKey records the extract-stage key sites were computed under
	// ("" before the first Analyze); Analyze recomputes extraction exactly
	// when the current key differs.
	sitesKey rescache.Key
	// sites are the extract-stage barrier sites.
	sites []*access.Site
}

// preArtifact is the preprocess-stage cache value.
type preArtifact struct {
	pre  *cpp.Result
	hash string
}

// parseArtifact is the parse-stage cache value.
type parseArtifact struct {
	ast  *cast.File
	errs []error
	// arenaBytes is the AST arena footprint of the parse that built ast.
	arenaBytes int64
}

// extractArtifact is the extract-stage cache value.
type extractArtifact struct {
	table *ctypes.Table
	sites []*access.Site
}

// projectEnv is a point-in-time snapshot of the preprocessing environment.
type projectEnv struct {
	include map[string]string
	defines map[string]string
	hash    string
}

// envSnapshot copies the headers/defines under the lock and returns them
// with their content hash (cached until AddHeader/Define invalidates it).
func (p *Project) envSnapshot() projectEnv {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.envHash == "" {
		parts := make([]string, 0, 2*(len(p.headers)+len(p.defines)))
		for _, k := range sortedKeys(p.headers) {
			parts = append(parts, "H"+k, p.headers[k])
		}
		for _, k := range sortedKeys(p.defines) {
			parts = append(parts, "D"+k, p.defines[k])
		}
		p.envHash = string(rescache.KeyOf("env-v1", parts...))
	}
	env := projectEnv{
		include: make(map[string]string, len(p.headers)),
		defines: make(map[string]string, len(p.defines)),
		hash:    p.envHash,
	}
	for k, v := range p.headers {
		env.include[k] = v
	}
	for k, v := range p.defines {
		env.defines[k] = v
	}
	return env
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// frontend runs the preprocess and parse stages for (name, src) under env,
// through the stage caches. On a full hit nothing runs and no spans are
// recorded; on a preprocess miss both stages run under the classic
// parse-wrapping-preprocess span topology of cparser.ParseSourceCtx.
func (p *Project) frontend(ctx context.Context, name, src string, env projectEnv) *artifacts {
	return p.frontendWith(ctx, name, src, env, false)
}

// frontendDirect is the uncached front-end used by ReleaseASTs mode: the
// same preprocess+parse under the same span topology, but bypassing the
// stage caches entirely so the LRU retains neither token streams nor parse
// trees — the artifacts record is the only reference, and the pipeline
// drops its ast as soon as extraction is done.
func (p *Project) frontendDirect(ctx context.Context, name, src string, env projectEnv) *artifacts {
	wrapCtx, wrapSpan := obs.Start(ctx, "parse")
	wrapSpan.SetAttr("file", name)
	copts := cpp.Options{Include: env.include, Defines: env.defines, Syms: p.syms}
	if p.legacyFrontend {
		copts.Syms, copts.LegacyLexer = nil, true
	}
	pre := cpp.PreprocessCtx(wrapCtx, name, src, copts)
	// No arena: these trees are built to be dropped after extraction, and
	// slab-batched nodes would stay pinned by the site records' pointers
	// into them (see cparser.NewNoArena).
	psr := cparser.NewNoArena(pre.Tokens)
	if p.legacyFrontend {
		psr = cparser.NewLegacy(pre.Tokens)
	}
	ast := psr.ParseFile(name)
	errs := append(append([]error{}, pre.Errors...), psr.Errors()...)
	wrapSpan.Add("tokens", int64(len(pre.Tokens)))
	wrapSpan.Add("decls", int64(len(ast.Decls)))
	wrapSpan.Add("errors", int64(len(errs)))
	wrapSpan.End()
	return &artifacts{
		preHash: pre.Fingerprint(name), ast: ast, errs: errs,
		tokens: len(pre.Tokens), arenaBytes: psr.ArenaBytes(),
	}
}

// frontendWith routes to the cached or direct front-end.
func (p *Project) frontendWith(ctx context.Context, name, src string, env projectEnv, direct bool) *artifacts {
	if direct {
		return p.frontendDirect(ctx, name, src, env)
	}
	preKey := rescache.KeyOf("preprocess-v1", env.hash, name, src)

	// The "parse" span must start before preprocessing runs and end after
	// parsing finishes, but only exist when this caller actually executes
	// the preprocess stage — cache hits contribute no spans.
	var wrapSpan *obs.Span
	wrapCtx := ctx
	v, _, _ := p.stages.Stage(stagePreprocess).Do(preKey, func() (any, error) {
		wrapCtx, wrapSpan = obs.Start(ctx, "parse")
		wrapSpan.SetAttr("file", name)
		copts := cpp.Options{Include: env.include, Defines: env.defines, Syms: p.syms}
		if p.legacyFrontend {
			copts.Syms, copts.LegacyLexer = nil, true
		}
		pre := cpp.PreprocessCtx(wrapCtx, name, src, copts)
		return &preArtifact{pre: pre, hash: pre.Fingerprint(name)}, nil
	})
	pa := v.(*preArtifact)

	pv, _, _ := p.stages.Stage(stageParse).Do(rescache.KeyOf("parse-v1", name, pa.hash), func() (any, error) {
		psr := cparser.New(pa.pre.Tokens)
		if p.legacyFrontend {
			psr = cparser.NewLegacy(pa.pre.Tokens)
		}
		ast := psr.ParseFile(name)
		errs := append(append([]error{}, pa.pre.Errors...), psr.Errors()...)
		return &parseArtifact{ast: ast, errs: errs, arenaBytes: psr.ArenaBytes()}, nil
	})
	ba := pv.(*parseArtifact)

	if wrapSpan != nil {
		wrapSpan.Add("tokens", int64(len(pa.pre.Tokens)))
		wrapSpan.Add("decls", int64(len(ba.ast.Decls)))
		wrapSpan.Add("errors", int64(len(ba.errs)))
		wrapSpan.End()
	}
	return &artifacts{
		preHash: pa.hash, ast: ba.ast, errs: ba.errs,
		tokens: len(pa.pre.Tokens), arenaBytes: ba.arenaBytes,
	}
}

// refreshStale re-runs the front-end for units whose preprocessing
// environment changed since their artifacts were built (Define/AddHeader
// dirty every file) and for units whose AST a previous ReleaseASTs run
// dropped — interprocedural analysis needs every parse tree. A unit whose
// preprocessed content is byte-identical under the new environment keeps
// every artifact, including cached sites; a released unit with unchanged
// content gets the fresh AST grafted into its record, keeping cached sites.
func (p *Project) refreshStale(ctx context.Context, files []*FileUnit, env projectEnv, workers int, direct bool) {
	var stale []*FileUnit
	p.mu.Lock()
	for _, fu := range files {
		if fu.envStale || fu.art == nil || fu.art.ast == nil {
			stale = append(stale, fu)
		}
	}
	p.mu.Unlock()
	if len(stale) == 0 {
		return
	}
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	for _, fu := range stale {
		go func(fu *FileUnit) {
			defer func() { done <- struct{}{} }()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // canceled: stay stale, the next Analyze retries
			}
			art := p.frontendWith(ctx, fu.Name, fu.src, env, direct)
			p.mu.Lock()
			if fu.art == nil || fu.art.preHash != art.preHash {
				fu.art = art
				fu.AST, fu.Errs = art.ast, art.errs
				fu.Table, fu.Sites = nil, nil
			} else if fu.art.ast == nil {
				next := *fu.art
				next.ast = art.ast
				fu.art = &next
				fu.AST = art.ast
			}
			fu.envStale = false
			p.mu.Unlock()
		}(fu)
	}
	for range stale {
		<-done
	}
}

// pipelineFile streams one unit through the fused per-file pipeline of the
// depth-0 Analyze: front-end refresh (only when the unit is new or its
// environment went stale), then the reuse-check → table → extract tail. It
// preserves refreshStale's semantics exactly — a unit whose preprocessed
// content is unchanged keeps every artifact, including cached sites — and
// the classic path's reuse accounting: +reused for in-place or shared-cache
// sites, +recomputed when extraction runs.
func (p *Project) pipelineFile(ectx context.Context, fu *FileUnit, env projectEnv, fp string, opts Options, extractCache *rescache.Cache, reused, recomputed *atomic.Int64) {
	p.mu.Lock()
	art, stale, src := fu.art, fu.envStale, fu.src
	p.mu.Unlock()

	// Reuse check before any front-end work: a clean unit whose sites match
	// the wanted key needs neither tokens nor an AST — a unit released by a
	// previous ReleaseASTs run is served without re-parsing.
	if art != nil && !stale {
		if want := extractKeyFor(fp, fu.Name, art.preHash, ""); art.sitesKey == want {
			reused.Add(1)
			p.mu.Lock()
			fu.Table, fu.Sites = art.table, art.sites
			p.mu.Unlock()
			return
		}
	}

	if art == nil || stale || art.ast == nil {
		fresh := p.frontendWith(ectx, fu.Name, src, env, opts.ReleaseASTs)
		p.mu.Lock()
		if fu.art == nil || fu.art.preHash != fresh.preHash {
			fu.art = fresh
			fu.AST, fu.Errs = fresh.ast, fresh.errs
			fu.Table, fu.Sites = nil, nil
		} else if fu.art.ast == nil {
			// Released unit, unchanged content: graft the fresh AST, keep
			// every cached artifact (table, sites, key).
			next := *fu.art
			next.ast = fresh.ast
			fu.art = &next
			fu.AST = fresh.ast
		}
		fu.envStale = false
		art = fu.art
		p.mu.Unlock()
	}

	want := extractKeyFor(fp, fu.Name, art.preHash, "")
	if art.sitesKey == want {
		reused.Add(1)
		p.mu.Lock()
		fu.Table, fu.Sites = art.table, art.sites
		p.mu.Unlock()
		return
	}
	v, hit, _ := extractCache.Do(want, func() (any, error) {
		recomputed.Add(1)
		table := p.tableFor(fu.Name, art)
		aopts := opts.Access
		aopts.Syms = p.extractSyms()
		ex := access.NewExtractor(fu.Name, table, aopts)
		sites := ex.ExtractFileCtx(ectx, art.ast)
		return &extractArtifact{table: table, sites: sites}, nil
	})
	if hit {
		reused.Add(1)
	}
	ea := v.(*extractArtifact)
	next := *art
	next.table, next.sites, next.sitesKey = ea.table, ea.sites, want
	if opts.ReleaseASTs {
		// Extraction is the AST's last consumer at depth 0: drop it so live
		// parse trees never exceed the in-flight worker count.
		next.ast = nil
	}
	p.mu.Lock()
	fu.art = &next
	if opts.ReleaseASTs {
		fu.AST = nil
	}
	fu.Table, fu.Sites = ea.table, ea.sites
	p.mu.Unlock()
}

// extractSyms returns the identifier table extraction should canonicalize
// Object strings through — nil on the legacy oracle path.
func (p *Project) extractSyms() *ctoken.SymTab {
	if p.legacyFrontend {
		return nil
	}
	return p.syms
}

// tableFor returns the cfg-stage symbol table for one file, memoized under
// the file's content hash so an options-only change rebuilds extraction but
// not the table.
func (p *Project) tableFor(name string, art *artifacts) *ctypes.Table {
	if art.table != nil {
		return art.table
	}
	v, _, _ := p.stages.Stage(stageCfg).Do(rescache.KeyOf("cfg-v1", name, art.preHash), func() (any, error) {
		return ctypes.NewTable(art.ast), nil
	})
	return v.(*ctypes.Table)
}

// extractKeyFor builds the extract-stage key: options fingerprint × file
// name × content hash, plus the interprocedural dependency-closure hash
// when cross-file analysis is on.
func extractKeyFor(fp, name, preHash, closure string) rescache.Key {
	if closure == "" {
		return rescache.KeyOf(fp, "extract-v1", name, preHash)
	}
	return rescache.KeyOf(fp, "extract-v1", name, preHash, closure)
}

// interprocClosures returns, per file, the content hash of its transitive
// call-graph dependency closure: the sorted (name, preHash) pairs of every
// file whose code the file's interprocedural extraction could observe —
// through spliced callee bodies or through inferred barrier semantics,
// which propagate along call edges. deps is callgraph.(*Graph).FileDeps.
//
// The hash changes exactly when a file in the closure changes content, so
// keying extraction on it conservatively invalidates every (transitive)
// caller of an edited file while files outside the closure keep their
// cached sites.
func interprocClosures(deps map[string][]string, files []*FileUnit) map[string]string {
	preOf := make(map[string]string, len(files))
	for _, fu := range files {
		if fu.art != nil {
			preOf[fu.Name] = fu.art.preHash
		}
	}
	out := make(map[string]string, len(files))
	for _, fu := range files {
		seen := map[string]bool{fu.Name: true}
		queue := []string{fu.Name}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range deps[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		names := make([]string, 0, len(seen))
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, 0, 2*len(names))
		for _, n := range names {
			parts = append(parts, n, preOf[n])
		}
		out[fu.Name] = string(rescache.KeyOf("closure-v1", parts...))
	}
	return out
}

// interprocClosuresSCC computes what interprocClosures computes — a per-file
// key that changes exactly when some file in the transitive dependency
// closure changes content — in O(V+E) instead of one BFS per file. The
// file-dependency graph is condensed into strongly connected components
// (iterative Tarjan); each component's hash covers its members' sorted
// (name, preHash) pairs plus its successor components' sorted hashes, and a
// file's key is its component's hash. Tarjan emits a component only after
// every component reachable from it, so one pass in emission order has all
// successor hashes ready. The hashes are structural (everything sorted
// before hashing), hence independent of traversal order.
//
// The literal key values differ from interprocClosures' closure-v1 keys —
// harmless, they are private extract-cache addresses, never outputs — but
// the invalidation behavior is identical (pinned by TestClosureSCCDifferential).
func interprocClosuresSCC(deps map[string][]string, files []*FileUnit) map[string]string {
	n := len(files)
	names := make([]string, n)
	preOf := make([]string, n)
	idxOf := make(map[string]int, n)
	for i, fu := range files {
		names[i] = fu.Name
		idxOf[fu.Name] = i
		if fu.art != nil {
			preOf[i] = fu.art.preHash
		}
	}
	adj := make([][]int, n)
	for i, nm := range names {
		for _, d := range deps[nm] {
			if j, ok := idxOf[d]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onstack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	var comps [][]int
	next := 0
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onstack[root] = true
		frames := []frame{{root, 0}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onstack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if pv := frames[len(frames)-1].v; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = len(comps)
					members = append(members, w)
					if w == v {
						break
					}
				}
				comps = append(comps, members)
			}
		}
	}

	hash := make([]string, len(comps))
	for c, members := range comps {
		mnames := make([]string, len(members))
		for k, v := range members {
			mnames[k] = names[v]
		}
		sort.Strings(mnames)
		parts := make([]string, 0, 2*len(mnames))
		for _, nm := range mnames {
			parts = append(parts, nm, preOf[idxOf[nm]])
		}
		succSeen := map[int]bool{}
		var succ []string
		for _, v := range members {
			for _, w := range adj[v] {
				if comp[w] != c && !succSeen[comp[w]] {
					succSeen[comp[w]] = true
					succ = append(succ, hash[comp[w]])
				}
			}
		}
		sort.Strings(succ)
		hash[c] = string(rescache.KeyOf("closure-v2", append(parts, succ...)...))
	}
	out := make(map[string]string, n)
	for i, nm := range names {
		out[nm] = hash[comp[i]]
	}
	return out
}

// IncrementalStats summarizes how much per-file work one Analyze call
// reused. Reused counts files whose sites came from their artifact record
// or the shared extract cache; Recomputed counts files whose extraction
// actually ran. The struct is deliberately not part of ResultView: the
// serialized result of an incremental run must stay byte-identical to a
// cold run's.
type IncrementalStats struct {
	// FilesTotal is the number of files in the analysis.
	FilesTotal int
	// FilesReused is how many files' extraction was served from cache.
	FilesReused int
	// FilesRecomputed is how many files' extraction ran this call.
	FilesRecomputed int
}

// Fingerprint folds every option that can change analysis results into a
// stable string for content-addressed caching. Workers is deliberately
// excluded: it changes scheduling, never output. The serving subsystem uses
// the same fingerprint for its whole-result cache keys.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("ofence-v2|ww=%d|rw=%d|inline=%d|ip=%d|maxu=%d|min=%d|once=%t|minconf=%g|generic=%s|wake=%s|sem=%s",
		o.Access.WriteWindow, o.Access.ReadWindow, o.Access.InlineDepth,
		o.InterprocDepth, o.Access.MaxUnits, o.MinSharedObjects, o.CheckOnce,
		o.MinConfidence,
		strings.Join(o.GenericStructs, ","),
		strings.Join(o.Access.ExtraWakeUps, ","),
		strings.Join(o.Access.ExtraBarrierSemantics, ","))
}

// StageStats snapshots the per-stage artifact cache counters (hits, misses,
// singleflight joins, evictions, entries), keyed by stage name. The caches
// are shared with clones, so the numbers aggregate the whole clone family.
func (p *Project) StageStats() map[string]rescache.Stats {
	return p.stages.Stats()
}
