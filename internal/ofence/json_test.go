package ofence

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestResultView(t *testing.T) {
	res := one(t, rpcSrc)
	v := res.View()
	if v.Sites != 2 {
		t.Errorf("sites = %d", v.Sites)
	}
	if len(v.Pairings) != 1 {
		t.Fatalf("pairings = %d", len(v.Pairings))
	}
	pg := v.Pairings[0]
	if len(pg.Sites) != 2 || len(pg.Common) == 0 {
		t.Errorf("pairing view = %+v", pg)
	}
	found := false
	for _, f := range v.Findings {
		if f.Kind == "misplaced memory access" {
			found = true
			if f.Function != "call_decode" || f.Object == nil || f.Object.Field != "rq_reply_bytes_recd" {
				t.Errorf("finding view = %+v", f)
			}
		}
	}
	if !found {
		t.Error("misplaced finding missing from view")
	}
}

func TestResultViewMarshals(t *testing.T) {
	res := one(t, rpcSrc)
	data, err := json.MarshalIndent(res.View(), "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(data)
	for _, want := range []string{`"barrier_sites": 2`, `"kind": "misplaced memory access"`, `"struct": "rpc_rqst"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
	// Round trip.
	var back ResultView
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Sites != 2 || len(back.Findings) != len(res.Findings) {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestResultViewParseErrors(t *testing.T) {
	p := NewProject()
	p.AddSource("bad.c", "void f( {{{")
	res := p.Analyze(DefaultOptions())
	v := res.View()
	if len(v.ParseErrors) == 0 {
		t.Error("parse errors missing from view")
	}
}
