package ofence

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ofence/internal/access"
	"ofence/internal/sitegen"
)

// benchPairSites builds the kernel-scale synthetic corpus (~2000 barrier
// sites: protocol pairs buried in hot-object noise) in canonical order,
// with every site's memoized object map pre-warmed so the measurement is
// pairing work, not lazy memoization.
func benchPairSites(n int) []*access.Site {
	sites := sitegen.Generate(sitegen.DefaultConfig(n, 42))
	sortSites(sites)
	for _, s := range sites {
		s.Objects()
	}
	return sites
}

// BenchmarkPairKernelScale measures Algorithm 1 old-vs-new on the synthetic
// kernel-scale corpus. "legacy" is the pre-index pairer (map object sets,
// per-getPair set allocation); "indexed" is the interned/inverted-index
// engine pinned to one worker, isolating the single-threaded data-layer
// win; "parallel8" adds sharding at Workers=8/GOMAXPROCS=8.
// make bench-pairing runs these via TestWriteBenchPairingJSON and records
// the results in BENCH_pairing.json.
func BenchmarkPairKernelScale(b *testing.B) {
	sites := benchPairSites(2000)
	opts := DefaultOptions()

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lp := newLegacyPairer(sites, opts)
			lp.run()
		}
	})
	b.Run("indexed", func(b *testing.B) {
		o := opts
		o.Workers = 1
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := newPairer(sites, o)
			pr.run(context.Background())
		}
	})
	b.Run("parallel8", func(b *testing.B) {
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		o := opts
		o.Workers = 8
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := newPairer(sites, o)
			pr.run(context.Background())
		}
	})
}

// TestWriteBenchPairingJSON refreshes BENCH_pairing.json: it runs the
// BenchmarkPairKernelScale variants via testing.Benchmark and writes their
// results in the BENCH_*.json schema (benchmark/command/results/acceptance;
// docs_test.go lints the shape). Gated behind OFENCE_BENCH_PAIRING_OUT so
// plain `go test` stays fast; `make bench-pairing` sets it.
func TestWriteBenchPairingJSON(t *testing.T) {
	out := os.Getenv("OFENCE_BENCH_PAIRING_OUT")
	if out == "" {
		t.Skip("set OFENCE_BENCH_PAIRING_OUT to refresh BENCH_pairing.json")
	}
	sites := benchPairSites(2000)
	opts := DefaultOptions()

	// Sanity-gate the numbers: all variants must produce identical results.
	lp := newLegacyPairer(sites, opts)
	want := pairFingerprint(lp.run())
	for _, workers := range []int{1, 8} {
		o := opts
		o.Workers = workers
		pr := newPairer(sites, o)
		if got := pairFingerprint(pr.run(context.Background())); got != want {
			t.Fatalf("workers=%d diverges from legacy; refusing to record benchmark", workers)
		}
	}

	legacy := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lp := newLegacyPairer(sites, opts)
			lp.run()
		}
	})
	indexed := testing.Benchmark(func(b *testing.B) {
		o := opts
		o.Workers = 1
		for i := 0; i < b.N; i++ {
			pr := newPairer(sites, o)
			pr.run(context.Background())
		}
	})
	parallel := testing.Benchmark(func(b *testing.B) {
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		o := opts
		o.Workers = 8
		for i := 0; i < b.N; i++ {
			pr := newPairer(sites, o)
			pr.run(context.Background())
		}
	})

	o := opts
	o.Workers = 8
	pr := newPairer(sites, o)
	pr.run(context.Background())

	round1 := func(x float64) float64 { return float64(int(x*10+0.5)) / 10 }
	speedupIndexed := round1(float64(legacy.NsPerOp()) / float64(indexed.NsPerOp()))
	speedupParallel := round1(float64(legacy.NsPerOp()) / float64(parallel.NsPerOp()))

	entry := func(r testing.BenchmarkResult) map[string]any {
		return map[string]any{
			"ns_per_op":     r.NsPerOp(),
			"bytes_per_op":  r.AllocedBytesPerOp(),
			"allocs_per_op": r.AllocsPerOp(),
		}
	}
	parallelEntry := entry(parallel)
	parallelEntry["pair_shards"] = pr.stats.Shards
	parallelEntry["index_probes"] = pr.stats.IndexProbes
	parallelEntry["candidates_pruned_bound"] = pr.stats.PrunedBound

	doc := map[string]any{
		"benchmark":   "BenchmarkPairKernelScale",
		"description": "Synthetic kernel-scale corpus (~2000 barrier sites: writer/reader protocol pairs buried in hot-object noise; internal/sitegen). 'legacy' is the pre-PR pairer with map[Object]int object sets and a per-getPair set allocation; 'indexed' is the interned/inverted-index engine with the weight-bound cutoff, pinned to one worker; 'parallel8' adds sharded candidate search at Workers=8, GOMAXPROCS=8. All three produce byte-identical pairings (asserted before recording).",
		"command":     "go test -run '^$' -bench BenchmarkPairKernelScale -benchtime 3s ./internal/ofence/",
		"refresh":     "make bench-pairing",
		"environment": map[string]string{
			"cpu":  benchCPU(),
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"results": map[string]any{
			"legacy":    entry(legacy),
			"indexed":   entry(indexed),
			"parallel8": parallelEntry,
		},
		"speedup_indexed":   speedupIndexed,
		"speedup_parallel8": speedupParallel,
		"acceptance":        "speedup_parallel8 >= 4x over the pre-PR pairer at GOMAXPROCS=8, with speedup_indexed >= 1.5x from single-threaded interning/indexing alone; byte-identical output asserted against the legacy oracle",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("legacy %v, indexed %v (%.1fx), parallel8 %v (%.1fx) -> %s",
		legacy.NsPerOp(), indexed.NsPerOp(), speedupIndexed, parallel.NsPerOp(), speedupParallel, out)
	if speedupIndexed < 1.5 || speedupParallel < 4 {
		t.Errorf("acceptance not met: indexed %.1fx (want >= 1.5), parallel8 %.1fx (want >= 4)", speedupIndexed, speedupParallel)
	}
}

// benchCPU returns the host CPU model for the environment block.
func benchCPU() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}
