package ofence

import (
	"encoding/json"
	"testing"
)

// resultJSON renders a result through its stable serialized projection.
func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res.View())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestInterprocCalleeEditInvalidatesCaller pins the interprocedural
// invalidation rule: editing a file re-keys every transitive caller through
// the dependency-closure hash, so callers never reuse sites built over
// stale inferred semantics — while unrelated files stay cached.
func TestInterprocCalleeEditInvalidatesCaller(t *testing.T) {
	opts := DefaultOptions()
	opts.InterprocDepth = 2

	p := interprocProject(t)
	if got := p.Analyze(opts); len(got.Pairings) != 1 {
		t.Fatalf("warm-up pairings = %d, want 1", len(got.Pairings))
	}

	// Gut the helper: publish_barrier no longer implies a write barrier, so
	// producer's pairing must disappear even though writer.c is untouched.
	const guttedBarrier = `
void publish_barrier(void) { }
`
	cold := NewProject()
	cold.AddHeader("shared.h", `struct foo { int data; int flag; };`)
	for _, fu := range p.Files() {
		if fu.Name == "barrier.c" {
			cold.AddSource(fu.Name, guttedBarrier)
			continue
		}
		cold.AddSource(fu.Name, fu.src)
	}
	coldRes := cold.Analyze(opts)
	if len(coldRes.Pairings) != 0 {
		t.Fatalf("cold gutted pairings = %d, want 0", len(coldRes.Pairings))
	}

	p.ReplaceSource("barrier.c", guttedBarrier)
	res := p.Analyze(opts)
	if got, want := resultJSON(t, res), resultJSON(t, coldRes); got != want {
		t.Errorf("incremental result differs from cold analysis:\n%s\nvs\n%s", got, want)
	}
	// barrier.c changed; writer.c calls into it, so both recompute.
	// reader.c has no path to barrier.c and is served from cache.
	if got := res.Incremental; got.FilesRecomputed != 2 || got.FilesReused != 1 {
		t.Errorf("recomputed=%d reused=%d, want 2/1 (callee + caller, reader cached)", got.FilesRecomputed, got.FilesReused)
	}
}
