// Package ofence implements the paper's contribution: pairing memory
// barriers by matching the shared objects accessed around them (Algorithm 1)
// and checking the paired code for ordering-constraint deviations (§5).
//
// The entry point is Project: add C sources, then Analyze. Analysis is
// file-parallel like the original tool. Results carry the pairings, the
// findings (misplaced accesses, wrong barrier types, repeated reads,
// unneeded barriers, missing READ_ONCE/WRITE_ONCE annotations), and
// statistics used by the evaluation harness.
package ofence

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ofence/internal/access"
	"ofence/internal/callgraph"
	"ofence/internal/cast"
	"ofence/internal/ctoken"
	"ofence/internal/ctypes"
	"ofence/internal/memmodel"
	"ofence/internal/obs"
	"ofence/internal/rescache"
	"ofence/internal/semprop"
)

// Options configures the analysis.
type Options struct {
	// Access holds the exploration windows and inlining depth.
	Access access.Options
	// MinSharedObjects is the pairing threshold (paper: 2).
	MinSharedObjects int
	// Workers bounds file-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// GenericStructs lists struct tags too generic to identify code (e.g.
	// the kernel's list_head); objects of these types never participate in
	// pairing. The paper reports such types as its main source of incorrect
	// pairings (§6.4).
	GenericStructs []string
	// CheckOnce enables the §7 READ_ONCE/WRITE_ONCE extension.
	CheckOnce bool
	// InterprocDepth enables interprocedural mode: a cross-file call graph
	// (internal/callgraph) plus fixpoint barrier-semantics inference
	// (internal/semprop), with exploration allowed to splice callee bodies
	// across file boundaries up to this depth. 0 — the default — preserves
	// the paper's one-level same-file behavior byte for byte.
	InterprocDepth int
	// MinConfidence gates findings by the ranking pass's score
	// (internal/rank): findings scoring below it are dropped from
	// Result.Findings. 0 — the default — disables the gate; every finding
	// is still scored. rank.DefaultThreshold is the tuned operating point
	// recorded in BENCH_confidence.json.
	MinConfidence float64
	// ReleaseASTs bounds AST residency on tree-scale runs: the per-file
	// pipeline bypasses the preprocess/parse stage caches and drops each
	// file's AST as soon as its extraction is done, so at InterprocDepth 0
	// the number of live ASTs never exceeds Workers. At interprocedural
	// depth every AST must be live at once for the call-graph phase, so
	// there the win is the resident project afterwards (a warm server
	// retains no parse trees), not the cold peak. Trees are parsed without
	// the AST arena in this mode — slab-batched nodes would stay pinned by
	// the barrier sites' node pointers, defeating the drop. The trade is
	// CPU for RSS — a later re-extraction must re-run the front-end. Excluded from
	// Fingerprint (like Workers, it changes scheduling and residency, never
	// results).
	ReleaseASTs bool
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Access:           access.Defaults(),
		MinSharedObjects: 2,
		GenericStructs:   []string{"list_head", "hlist_head", "hlist_node", "rb_node", "rb_root"},
		CheckOnce:        true,
	}
}

// FileUnit is one analyzed translation unit. Name/AST/Table/Sites/Errs are
// read-only mirrors of the unit's current artifact record, refreshed by the
// project whenever a stage recomputes.
type FileUnit struct {
	Name  string
	AST   *cast.File
	Table *ctypes.Table
	Sites []*access.Site
	Errs  []error

	// src is the raw source, kept so the front-end can re-run when the
	// macro environment changes (Define/AddHeader dirties every file).
	src string
	// art is the immutable per-stage artifact record (see incremental.go);
	// replaced wholesale on recompute, never mutated, so clones sharing the
	// old record are undisturbed.
	art *artifacts
	// envStale marks that headers/defines changed after art was built; the
	// next Analyze re-runs the front-end to re-key the file.
	envStale bool
}

// Project is a set of files analyzed together. Pairing is global; the
// per-file pipeline (preprocess → parse → cfg → extract) is incremental:
// every stage output is an immutable artifact keyed by the content hash of
// its inputs in a cache shared with clones (see incremental.go), so
// re-analyzing after ReplaceSource re-runs per-file stages only for the
// changed file and replays the cheap project-wide phases over cached sites
// (the paper's incremental mode, §6.1).
//
// Concurrency: every method is safe to call concurrently, and Analyze calls
// on the SAME project are serialized internally (they swap per-unit
// artifact pointers); to overlap analyses of one file set, give each
// goroutine its own Clone — clones share the stage caches, so work done by
// one is reused by all.
type Project struct {
	mu      sync.Mutex
	files   []*FileUnit
	headers map[string]string
	defines map[string]string
	// envHash caches the content hash of headers+defines; "" means
	// recompute (AddHeader/Define reset it).
	envHash string
	// stages holds the content-addressed per-file artifact caches, shared
	// with clones so equal work is never redone.
	stages *rescache.Stages
	// syms is the project-wide identifier table: the zero-copy tokenizer
	// interns every identifier spelling through it, and extraction
	// canonicalizes Object strings against it, so equal names across files
	// share one backing string. Shared with clones (it only ever grows).
	syms *ctoken.SymTab
	// legacyFrontend routes preprocessing through the pre-interning lexer
	// and parsing through the arena-free parser. The frontend overhaul's
	// differential tests and benchmarks use it as the oracle; it is never
	// set in production paths.
	legacyFrontend bool
	// seqGlobal routes the interprocedural global phases through the
	// sequential pre-sharding implementations (callgraph.Build, round-robin
	// semprop, per-file closure BFS, unsharded dedup and census). The
	// tree-scale overhaul's differential tests and benchmarks use it as the
	// oracle; it is never set in production paths.
	seqGlobal bool
	// runMu serializes Analyze calls on this project: runs swap the
	// per-unit artifact records, which concurrent runs would race on.
	runMu sync.Mutex
}

// NewProject returns an empty project.
func NewProject() *Project {
	return &Project{
		headers: map[string]string{},
		defines: map[string]string{},
		stages:  rescache.NewStages(0),
		syms:    ctoken.NewSymTab(),
	}
}

// AddHeader registers an include-resolvable header shared by sources. Every
// existing file is marked stale: header text can reach any translation unit
// through #include, so the next Analyze re-keys them all (files whose
// preprocessed content is unchanged keep their cached artifacts).
func (p *Project) AddHeader(path, src string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.headers[path] = src
	p.markEnvChangedLocked()
}

// Define seeds a preprocessor symbol (kernel config) for all sources. Like
// AddHeader, it conservatively dirties every file.
func (p *Project) Define(name, value string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defines[name] = value
	p.markEnvChangedLocked()
}

// markEnvChangedLocked invalidates the cached environment hash and marks
// every unit for a front-end refresh. Callers hold p.mu.
func (p *Project) markEnvChangedLocked() {
	p.envHash = ""
	for _, fu := range p.files {
		fu.envStale = true
	}
}

// AddSource parses one C file into the project. Parse errors are recorded on
// the file unit, not fatal (Smatch-style resilience).
func (p *Project) AddSource(name, src string) *FileUnit {
	env := p.envSnapshot()
	art := p.frontend(context.Background(), name, src, env)
	fu := &FileUnit{Name: name, AST: art.ast, Errs: art.errs, src: src, art: art}
	p.mu.Lock()
	p.files = append(p.files, fu)
	p.mu.Unlock()
	return fu
}

// SourceFile is one named C source for batch addition.
type SourceFile struct {
	Name string
	Src  string
}

// AddSources parses a batch of files into the project, fanning the parses
// out over a worker pool sized by GOMAXPROCS. The units are appended in the
// order given, so results are deterministic regardless of scheduling.
func (p *Project) AddSources(srcs []SourceFile) []*FileUnit {
	return p.AddSourcesCtx(context.Background(), srcs)
}

// AddSourcesCtx is AddSources under an observability context: when ctx
// carries an obs.Tracer, each file's preprocessing and parsing is recorded
// as "preprocess"/"parse" spans (see internal/obs).
func (p *Project) AddSourcesCtx(ctx context.Context, srcs []SourceFile) []*FileUnit {
	env := p.envSnapshot()
	units := make([]*FileUnit, len(srcs))
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, sf := range srcs {
		wg.Add(1)
		go func(i int, sf SourceFile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			art := p.frontend(ctx, sf.Name, sf.Src, env)
			units[i] = &FileUnit{Name: sf.Name, AST: art.ast, Errs: art.errs, src: sf.Src, art: art}
		}(i, sf)
	}
	wg.Wait()

	p.mu.Lock()
	p.files = append(p.files, units...)
	p.mu.Unlock()
	return units
}

// AnalyzeSources adds srcs to the project and analyzes them in one call.
// See AnalyzeSourcesCtx.
func (p *Project) AnalyzeSources(srcs []SourceFile, opts Options) *Result {
	res, _ := p.AnalyzeSourcesCtx(context.Background(), srcs, opts)
	return res
}

// AnalyzeSourcesCtx appends srcs as pending units and analyzes the project.
// Unlike AddSources+Analyze — which parses every file to a barrier before
// any extraction starts — the pending units enter Analyze's pipelined
// schedule (at InterprocDepth 0), so one worker carries a file from
// preprocess through extraction while others are still parsing later files.
// The result is byte-identical to the two-call sequence; only the schedule
// differs.
func (p *Project) AnalyzeSourcesCtx(ctx context.Context, srcs []SourceFile, opts Options) (*Result, error) {
	units := make([]*FileUnit, len(srcs))
	for i, sf := range srcs {
		// envStale routes the unit through the front-end on first analysis,
		// both in the fused pipeline and in refreshStale.
		units[i] = &FileUnit{Name: sf.Name, src: sf.Src, envStale: true}
	}
	p.mu.Lock()
	p.files = append(p.files, units...)
	p.mu.Unlock()
	return p.analyze(ctx, opts)
}

// Files returns a snapshot of the file units in insertion order.
func (p *Project) Files() []*FileUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*FileUnit, len(p.files))
	copy(out, p.files)
	return out
}

// Clone returns a project with the same headers, defines and parsed files.
// The clone shares the originals' immutable artifact records and the stage
// caches (copy-on-write: recomputation installs fresh records on one
// project without touching the other), so a clone may be analyzed
// concurrently with the original and re-analyzing a clone after one
// ReplaceSource recomputes exactly that file.
func (p *Project) Clone() *Project {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &Project{
		headers: make(map[string]string, len(p.headers)),
		defines: make(map[string]string, len(p.defines)),
		files:   make([]*FileUnit, 0, len(p.files)),
		envHash: p.envHash,
		stages:  p.stages,
		syms:    p.syms,

		legacyFrontend: p.legacyFrontend,
		seqGlobal:      p.seqGlobal,
	}
	for k, v := range p.headers {
		q.headers[k] = v
	}
	for k, v := range p.defines {
		q.defines[k] = v
	}
	for _, fu := range p.files {
		q.files = append(q.files, &FileUnit{
			Name: fu.Name, AST: fu.AST, Table: fu.Table, Sites: fu.Sites,
			Errs: fu.Errs, src: fu.src, art: fu.art, envStale: fu.envStale,
		})
	}
	return q
}

// ReplaceSource swaps one file's source in place, keeping every other
// file's cached artifacts valid. When the new source preprocesses to the
// same content hash (whitespace or comment-only edit), the existing unit —
// including its cached extraction — is kept as is. It returns the unit, or
// nil when no file of that name exists.
func (p *Project) ReplaceSource(name, src string) *FileUnit {
	return p.ReplaceSourceCtx(context.Background(), name, src)
}

// ReplaceSourceCtx is ReplaceSource under an observability context: when the
// front-end actually runs (changed content), it is recorded as
// "preprocess"/"parse" spans on ctx's tracer.
func (p *Project) ReplaceSourceCtx(ctx context.Context, name, src string) *FileUnit {
	p.mu.Lock()
	idx := -1
	for i, fu := range p.files {
		if fu.Name == name {
			idx = i
			break
		}
	}
	p.mu.Unlock()
	if idx < 0 {
		return nil
	}
	env := p.envSnapshot()
	art := p.frontend(ctx, name, src, env)
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.files[idx]
	if old.art != nil && old.art.preHash == art.preHash && !old.envStale {
		old.src = src
		return old
	}
	fu := &FileUnit{Name: name, AST: art.ast, Errs: art.errs, src: src, art: art}
	p.files[idx] = fu
	return fu
}

// Pairing is a set of barrier sites inferred to run concurrently. Sites[0]
// is the write barrier the pairing was built from.
type Pairing struct {
	Sites []*access.Site
	// Common is the shared-object set the pairing is based on.
	Common []access.Object
	// Weight is the distance product of the winning object pair (lower is
	// a closer, more confident pairing).
	Weight int
}

// Writer returns the originating write-side barrier.
func (pr *Pairing) Writer() *access.Site { return pr.Sites[0] }

// Readers returns the paired sites other than the originating writer.
func (pr *Pairing) Readers() []*access.Site { return pr.Sites[1:] }

// String renders the pairing.
func (pr *Pairing) String() string {
	s := fmt.Sprintf("pairing[w=%d] %s(%s)", pr.Weight, pr.Sites[0].Fn.Name, pr.Sites[0].Name)
	for _, r := range pr.Sites[1:] {
		s += fmt.Sprintf(" <-> %s(%s)", r.Fn.Name, r.Name)
	}
	return s
}

// Timing is the per-phase cost breakdown of one Analyze call.
type Timing struct {
	// Extract covers per-file table building and access extraction (zero
	// for files served from the incremental cache).
	Extract time.Duration
	// Pair covers the global Algorithm 1 pass.
	Pair time.Duration
	// Check covers the deviation checkers.
	Check time.Duration
}

// Result is the outcome of Analyze.
type Result struct {
	Timing   Timing
	Sites    []*access.Site
	Pairings []*Pairing
	// Unpaired are barrier sites not in any pairing.
	Unpaired []*access.Site
	// ImplicitIPC are write barriers left unpaired because a wake-up call
	// closer than any shared object acts as the implicit read barrier.
	ImplicitIPC []*access.Site
	Findings    []*Finding
	// ParseErrors aggregates per-file diagnostics.
	ParseErrors []error
	// Inferred lists the functions the interprocedural fixpoint classified
	// as implicit barriers (nil when InterprocDepth is 0).
	Inferred []semprop.InferredFn
	// CallGraph holds the interprocedural call-graph statistics (zero when
	// InterprocDepth is 0).
	CallGraph callgraph.Stats
	// Incremental reports per-file cache reuse for this call. Excluded from
	// ResultView so incremental and cold runs serialize identically.
	Incremental IncrementalStats
	// PairStats reports the pairing engine's execution counters (shards,
	// index probes, bound-pruned candidate pairs). Excluded from ResultView
	// so sequential and parallel runs serialize identically.
	PairStats PairStats
}

// Analyze runs extraction, pairing and checking over every file.
func (p *Project) Analyze(opts Options) *Result {
	res, _ := p.analyze(context.Background(), opts)
	return res
}

// AnalyzeParallel is Analyze with request-scoped cancellation: per-file
// extraction and per-pairing checking fan out across a bounded worker pool,
// and the analysis aborts between work items as soon as ctx is canceled or
// times out, returning ctx's error. This is the entry point the serving
// subsystem (internal/service) and the CLIs route through.
func (p *Project) AnalyzeParallel(ctx context.Context, opts Options) (*Result, error) {
	return p.analyze(ctx, opts)
}

// analyze is the shared pipeline behind Analyze and AnalyzeParallel.
func (p *Project) analyze(ctx context.Context, opts Options) (*Result, error) {
	if opts.MinSharedObjects <= 0 {
		opts.MinSharedObjects = 2
	}
	// Serialize runs on this project: runs swap per-unit artifact records.
	p.runMu.Lock()
	defer p.runMu.Unlock()
	ctx, asp := obs.Start(ctx, "analyze")
	defer asp.End()
	res := &Result{}
	fp := opts.Fingerprint()

	env := p.envSnapshot()
	p.mu.Lock()
	files := make([]*FileUnit, len(p.files))
	copy(files, p.files)
	p.mu.Unlock()
	asp.Add("files", int64(len(files)))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	phaseStart := time.Now()
	var reused, recomputed, busyNS atomic.Int64
	extractCache := p.stages.Stage(stageExtract)
	var ectx context.Context
	var esp *obs.Span

	if opts.InterprocDepth == 0 {
		// Phases 0+1 fused into a pipelined per-file schedule: each worker
		// streams one file end to end — front-end refresh (preprocess+parse,
		// only when the unit is stale or new) → symbol table → extraction —
		// so there is no front-end barrier and the parse of a later file
		// overlaps the extraction of an earlier one. Sound only at depth 0,
		// where a file's extraction depends on nothing but that file.
		ectx, esp = obs.Start(ctx, "extract")
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, fu := range files {
			wg.Add(1)
			go func(fu *FileUnit) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return // canceled: leave the unit's artifacts as they were
				}
				start := time.Now()
				defer func() { busyNS.Add(int64(time.Since(start))) }()
				p.pipelineFile(ectx, fu, env, fp, opts, extractCache, &reused, &recomputed)
			}(fu)
		}
		wg.Wait()
	} else {
		// Phase 0: re-run the front-end for units dirtied by Define/AddHeader
		// (or whose AST a previous ReleaseASTs run dropped), so every unit's
		// artifacts are keyed by current content. A barrier here is required:
		// the call graph below needs every AST.
		p.refreshStale(ctx, files, env, workers, opts.ReleaseASTs)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Interprocedural mode: build the cross-file call graph and run the
		// barrier-semantics fixpoint before extraction, so every file's
		// exploration sees the inferred implicit barriers and can splice callees
		// across file boundaries. Both phases are cheap and project-wide, so
		// they always run; the per-file extract cache stays sound because its
		// keys fold in each file's dependency-closure hash — a one-file edit
		// re-keys (and so re-extracts) every transitive caller, and only those.
		var resolve func(file string) func(string) *cast.FuncDecl
		var inferredNames map[string]memmodel.BarrierKind
		var closures map[string]string
		{
			cgf := make([]callgraph.File, 0, len(files))
			for _, fu := range files {
				cgf = append(cgf, callgraph.File{Name: fu.Name, AST: fu.AST})
			}
			_, gsp := obs.Start(ctx, "callgraph")
			var g *callgraph.Graph
			if p.seqGlobal {
				g = callgraph.Build(cgf)
			} else {
				g = callgraph.BuildParallel(cgf, workers)
			}
			res.CallGraph = g.Stats()
			gsp.Add("functions", int64(res.CallGraph.Functions))
			gsp.Add("edges", int64(res.CallGraph.Edges))
			gsp.Add("unresolved", int64(res.CallGraph.Unresolved))
			gsp.End()
			_, ssp := obs.Start(ctx, "semprop")
			sopts := semprop.Options{ExtraFull: opts.Access.ExtraBarrierSemantics}
			if p.seqGlobal {
				sopts.Sequential = true
			} else {
				sopts.Workers = workers
			}
			inf := semprop.Infer(g, sopts)
			res.Inferred = inf.Functions()
			ssp.Add("inferred", int64(len(res.Inferred)))
			ssp.Add("sccs", int64(inf.Components))
			ssp.Add("scc_levels", int64(inf.Levels))
			ssp.End()
			inferredNames = inf.NameKinds()
			resolve = g.ResolverFor
			if p.seqGlobal {
				closures = interprocClosures(g.FileDeps(), files)
			} else {
				closures = interprocClosuresSCC(g.FileDeps(), files)
			}
		}

		// Phase 1: per-file extraction, in parallel. A unit whose artifact
		// record already carries sites for the wanted key is served in place; a
		// key found in the shared stage cache (e.g. computed by a clone) is
		// adopted without running; only genuinely new (file content × options ×
		// closure) combinations execute.
		ectx, esp = obs.Start(ctx, "extract")
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, fu := range files {
			p.mu.Lock()
			art := fu.art
			p.mu.Unlock()
			want := extractKeyFor(fp, fu.Name, art.preHash, closures[fu.Name])
			if art.sitesKey == want {
				reused.Add(1)
				p.mu.Lock()
				fu.Table, fu.Sites = art.table, art.sites
				p.mu.Unlock()
				continue
			}
			wg.Add(1)
			go func(fu *FileUnit, art *artifacts, want rescache.Key) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return // canceled: leave the unit's artifacts as they were
				}
				start := time.Now()
				defer func() { busyNS.Add(int64(time.Since(start))) }()
				v, hit, _ := extractCache.Do(want, func() (any, error) {
					recomputed.Add(1)
					table := p.tableFor(fu.Name, art)
					aopts := opts.Access
					aopts.Syms = p.extractSyms()
					aopts.InferredSemantics = inferredNames
					aopts.Resolve = resolve(fu.Name)
					aopts.InterprocDepth = opts.InterprocDepth
					ex := access.NewExtractor(fu.Name, table, aopts)
					sites := ex.ExtractFileCtx(ectx, art.ast)
					return &extractArtifact{table: table, sites: sites}, nil
				})
				if hit {
					reused.Add(1)
				}
				ea := v.(*extractArtifact)
				next := *art
				next.table, next.sites, next.sitesKey = ea.table, ea.sites, want
				p.mu.Lock()
				fu.art = &next
				fu.Table, fu.Sites = ea.table, ea.sites
				p.mu.Unlock()
			}(fu, art, want)
		}
		wg.Wait()
		if opts.ReleaseASTs {
			// Extraction is done and the call graph is built: drop every
			// unit's top-level AST reference so steady-state residency is
			// sites and tables, not parse trees. refreshStale re-frontends
			// released units on the next interprocedural run.
			p.mu.Lock()
			for _, fu := range files {
				if fu.art != nil && fu.art.ast != nil {
					next := *fu.art
					next.ast = nil
					fu.art = &next
				}
				fu.AST = nil
			}
			p.mu.Unlock()
		}
	}
	res.Timing.Extract = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		esp.End()
		return nil, err
	}

	var frontTokens, frontArena int64
	for _, fu := range files {
		res.Sites = append(res.Sites, fu.Sites...)
		res.ParseErrors = append(res.ParseErrors, fu.Errs...)
		if fu.art != nil {
			frontTokens += int64(fu.art.tokens)
			frontArena += fu.art.arenaBytes
		}
	}
	res.Incremental = IncrementalStats{
		FilesTotal:      len(files),
		FilesReused:     int(reused.Load()),
		FilesRecomputed: int(recomputed.Load()),
	}
	esp.Add("files", int64(len(files)))
	esp.Add("files_reused", reused.Load())
	esp.Add("files_recomputed", recomputed.Load())
	esp.Add("sites", int64(len(res.Sites)))
	esp.Add("frontend.tokens", frontTokens)
	esp.Add("frontend.arena_bytes", frontArena)
	if wall := time.Since(phaseStart); wall > 0 && workers > 0 {
		esp.Add("pipeline.occupancy_pct", busyNS.Load()*100/(int64(wall)*int64(workers)))
	}
	esp.End()
	if opts.InterprocDepth > 0 {
		// Cross-file inlining makes the same physical barrier visible from
		// callers in other files; keep the richest view, as per-file
		// extraction already does within one file.
		if p.seqGlobal {
			res.Sites = dedupSites(res.Sites)
		} else {
			res.Sites = dedupSitesSharded(res.Sites, workers)
		}
	}
	sortSites(res.Sites)

	// Phase 2: global pairing (Algorithm 1), sharded over the worker pool
	// (see pair.go; the result is byte-identical at any worker count).
	phaseStart = time.Now()
	pctx, psp := obs.Start(ctx, "pair")
	pairer := newPairer(res.Sites, opts)
	res.Pairings, res.Unpaired, res.ImplicitIPC = pairer.run(pctx)
	res.PairStats = pairer.stats
	psp.Add("pairings", int64(len(res.Pairings)))
	psp.Add("unpaired", int64(len(res.Unpaired)))
	psp.Add("implicit_ipc", int64(len(res.ImplicitIPC)))
	psp.Add("candidates_pruned", res.PairStats.Pruned)
	psp.Add("candidates_pruned_bound", res.PairStats.PrunedBound)
	psp.Add("index_probes", res.PairStats.IndexProbes)
	psp.Add("pair_shards", int64(res.PairStats.Shards))
	psp.End()
	res.Timing.Pair = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: checking, fanned out per pairing.
	phaseStart = time.Now()
	_, ksp := obs.Start(ctx, "check")
	ck := &checker{opts: opts}
	findings, err := ck.checkParallel(ctx, res, workers)
	if err != nil {
		ksp.End()
		return nil, err
	}
	res.Findings = findings
	ksp.Add("findings", int64(len(res.Findings)))
	ksp.End()
	res.Timing.Check = time.Since(phaseStart)

	// Phase 4: confidence ranking (internal/rank). Every finding is scored
	// from the outlier census, pairing margins, site richness and semantics
	// provenance; MinConfidence > 0 additionally gates the finding list.
	p.rankFindings(ctx, res, opts, workers)
	return res, nil
}

// dedupSites collapses sites with the same canonical barrier identity,
// keeping the richest view (first seen wins ties), preserving input order.
func dedupSites(sites []*access.Site) []*access.Site {
	best := map[string]*access.Site{}
	var order []string
	for _, s := range sites {
		id := s.ID()
		cur, ok := best[id]
		if !ok {
			best[id] = s
			order = append(order, id)
			continue
		}
		if s.Richness() > cur.Richness() {
			best[id] = s
		}
	}
	out := make([]*access.Site, 0, len(order))
	for _, id := range order {
		out = append(out, best[id])
	}
	return out
}

// dedupSitesSharded is dedupSites sharded over the worker pool for
// tree-scale site lists. Sites are sharded by a hash of their canonical
// barrier identity, so every occurrence of one physical barrier lands in
// one shard; each shard scans its sites in ascending input order keeping
// the richest view (first seen wins ties — dedupSites' exact rule) along
// with the input index of the identity's first occurrence, and the merge
// re-sorts winners by that first index. The output is therefore the byte-
// identical site list dedupSites produces, at any worker count.
func dedupSitesSharded(sites []*access.Site, workers int) []*access.Site {
	if workers > 16 {
		workers = 16
	}
	if workers <= 1 || len(sites) < 64 {
		return dedupSites(sites)
	}
	// Phase 1: canonical IDs and shard assignment, computed once per site
	// (ID() canonicalization is the hot part of dedup at tree scale).
	ids := make([]string, len(sites))
	shard := make([]uint8, len(sites))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sites); i += workers {
				id := sites[i].ID()
				h := uint32(2166136261)
				for j := 0; j < len(id); j++ {
					h ^= uint32(id[j])
					h *= 16777619
				}
				ids[i] = id
				shard[i] = uint8(h % uint32(workers))
			}
		}(w)
	}
	wg.Wait()

	// Phase 2: per-shard keep-richest over that shard's identities.
	type kept struct {
		site  *access.Site
		first int
	}
	perShard := make([][]*kept, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			best := map[string]*kept{}
			var order []*kept
			for i, s := range sites {
				if int(shard[i]) != w {
					continue
				}
				cur, ok := best[ids[i]]
				if !ok {
					k := &kept{site: s, first: i}
					best[ids[i]] = k
					order = append(order, k)
					continue
				}
				if s.Richness() > cur.site.Richness() {
					cur.site = s
				}
			}
			perShard[w] = order
		}(w)
	}
	wg.Wait()

	// Phase 3: merge by first-occurrence index — dedupSites' output order.
	var all []*kept
	for _, sh := range perShard {
		all = append(all, sh...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })
	out := make([]*access.Site, len(all))
	for i, k := range all {
		out[i] = k.site
	}
	return out
}

func sortSites(sites []*access.Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
}
