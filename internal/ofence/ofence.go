// Package ofence implements the paper's contribution: pairing memory
// barriers by matching the shared objects accessed around them (Algorithm 1)
// and checking the paired code for ordering-constraint deviations (§5).
//
// The entry point is Project: add C sources, then Analyze. Analysis is
// file-parallel like the original tool. Results carry the pairings, the
// findings (misplaced accesses, wrong barrier types, repeated reads,
// unneeded barriers, missing READ_ONCE/WRITE_ONCE annotations), and
// statistics used by the evaluation harness.
package ofence

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ofence/internal/access"
	"ofence/internal/callgraph"
	"ofence/internal/cast"
	"ofence/internal/ctypes"
	"ofence/internal/memmodel"
	"ofence/internal/obs"
	"ofence/internal/rescache"
	"ofence/internal/semprop"
)

// Options configures the analysis.
type Options struct {
	// Access holds the exploration windows and inlining depth.
	Access access.Options
	// MinSharedObjects is the pairing threshold (paper: 2).
	MinSharedObjects int
	// Workers bounds file-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// GenericStructs lists struct tags too generic to identify code (e.g.
	// the kernel's list_head); objects of these types never participate in
	// pairing. The paper reports such types as its main source of incorrect
	// pairings (§6.4).
	GenericStructs []string
	// CheckOnce enables the §7 READ_ONCE/WRITE_ONCE extension.
	CheckOnce bool
	// InterprocDepth enables interprocedural mode: a cross-file call graph
	// (internal/callgraph) plus fixpoint barrier-semantics inference
	// (internal/semprop), with exploration allowed to splice callee bodies
	// across file boundaries up to this depth. 0 — the default — preserves
	// the paper's one-level same-file behavior byte for byte.
	InterprocDepth int
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Access:           access.Defaults(),
		MinSharedObjects: 2,
		GenericStructs:   []string{"list_head", "hlist_head", "hlist_node", "rb_node", "rb_root"},
		CheckOnce:        true,
	}
}

// FileUnit is one analyzed translation unit. Name/AST/Table/Sites/Errs are
// read-only mirrors of the unit's current artifact record, refreshed by the
// project whenever a stage recomputes.
type FileUnit struct {
	Name  string
	AST   *cast.File
	Table *ctypes.Table
	Sites []*access.Site
	Errs  []error

	// src is the raw source, kept so the front-end can re-run when the
	// macro environment changes (Define/AddHeader dirties every file).
	src string
	// art is the immutable per-stage artifact record (see incremental.go);
	// replaced wholesale on recompute, never mutated, so clones sharing the
	// old record are undisturbed.
	art *artifacts
	// envStale marks that headers/defines changed after art was built; the
	// next Analyze re-runs the front-end to re-key the file.
	envStale bool
}

// Project is a set of files analyzed together. Pairing is global; the
// per-file pipeline (preprocess → parse → cfg → extract) is incremental:
// every stage output is an immutable artifact keyed by the content hash of
// its inputs in a cache shared with clones (see incremental.go), so
// re-analyzing after ReplaceSource re-runs per-file stages only for the
// changed file and replays the cheap project-wide phases over cached sites
// (the paper's incremental mode, §6.1).
//
// Concurrency: every method is safe to call concurrently, and Analyze calls
// on the SAME project are serialized internally (they swap per-unit
// artifact pointers); to overlap analyses of one file set, give each
// goroutine its own Clone — clones share the stage caches, so work done by
// one is reused by all.
type Project struct {
	mu      sync.Mutex
	files   []*FileUnit
	headers map[string]string
	defines map[string]string
	// envHash caches the content hash of headers+defines; "" means
	// recompute (AddHeader/Define reset it).
	envHash string
	// stages holds the content-addressed per-file artifact caches, shared
	// with clones so equal work is never redone.
	stages *rescache.Stages
	// runMu serializes Analyze calls on this project: runs swap the
	// per-unit artifact records, which concurrent runs would race on.
	runMu sync.Mutex
}

// NewProject returns an empty project.
func NewProject() *Project {
	return &Project{
		headers: map[string]string{},
		defines: map[string]string{},
		stages:  rescache.NewStages(0),
	}
}

// AddHeader registers an include-resolvable header shared by sources. Every
// existing file is marked stale: header text can reach any translation unit
// through #include, so the next Analyze re-keys them all (files whose
// preprocessed content is unchanged keep their cached artifacts).
func (p *Project) AddHeader(path, src string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.headers[path] = src
	p.markEnvChangedLocked()
}

// Define seeds a preprocessor symbol (kernel config) for all sources. Like
// AddHeader, it conservatively dirties every file.
func (p *Project) Define(name, value string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defines[name] = value
	p.markEnvChangedLocked()
}

// markEnvChangedLocked invalidates the cached environment hash and marks
// every unit for a front-end refresh. Callers hold p.mu.
func (p *Project) markEnvChangedLocked() {
	p.envHash = ""
	for _, fu := range p.files {
		fu.envStale = true
	}
}

// AddSource parses one C file into the project. Parse errors are recorded on
// the file unit, not fatal (Smatch-style resilience).
func (p *Project) AddSource(name, src string) *FileUnit {
	env := p.envSnapshot()
	art := p.frontend(context.Background(), name, src, env)
	fu := &FileUnit{Name: name, AST: art.ast, Errs: art.errs, src: src, art: art}
	p.mu.Lock()
	p.files = append(p.files, fu)
	p.mu.Unlock()
	return fu
}

// SourceFile is one named C source for batch addition.
type SourceFile struct {
	Name string
	Src  string
}

// AddSources parses a batch of files into the project, fanning the parses
// out over a worker pool sized by GOMAXPROCS. The units are appended in the
// order given, so results are deterministic regardless of scheduling.
func (p *Project) AddSources(srcs []SourceFile) []*FileUnit {
	return p.AddSourcesCtx(context.Background(), srcs)
}

// AddSourcesCtx is AddSources under an observability context: when ctx
// carries an obs.Tracer, each file's preprocessing and parsing is recorded
// as "preprocess"/"parse" spans (see internal/obs).
func (p *Project) AddSourcesCtx(ctx context.Context, srcs []SourceFile) []*FileUnit {
	env := p.envSnapshot()
	units := make([]*FileUnit, len(srcs))
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, sf := range srcs {
		wg.Add(1)
		go func(i int, sf SourceFile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			art := p.frontend(ctx, sf.Name, sf.Src, env)
			units[i] = &FileUnit{Name: sf.Name, AST: art.ast, Errs: art.errs, src: sf.Src, art: art}
		}(i, sf)
	}
	wg.Wait()

	p.mu.Lock()
	p.files = append(p.files, units...)
	p.mu.Unlock()
	return units
}

// Files returns a snapshot of the file units in insertion order.
func (p *Project) Files() []*FileUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*FileUnit, len(p.files))
	copy(out, p.files)
	return out
}

// Clone returns a project with the same headers, defines and parsed files.
// The clone shares the originals' immutable artifact records and the stage
// caches (copy-on-write: recomputation installs fresh records on one
// project without touching the other), so a clone may be analyzed
// concurrently with the original and re-analyzing a clone after one
// ReplaceSource recomputes exactly that file.
func (p *Project) Clone() *Project {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &Project{
		headers: make(map[string]string, len(p.headers)),
		defines: make(map[string]string, len(p.defines)),
		files:   make([]*FileUnit, 0, len(p.files)),
		envHash: p.envHash,
		stages:  p.stages,
	}
	for k, v := range p.headers {
		q.headers[k] = v
	}
	for k, v := range p.defines {
		q.defines[k] = v
	}
	for _, fu := range p.files {
		q.files = append(q.files, &FileUnit{
			Name: fu.Name, AST: fu.AST, Table: fu.Table, Sites: fu.Sites,
			Errs: fu.Errs, src: fu.src, art: fu.art, envStale: fu.envStale,
		})
	}
	return q
}

// ReplaceSource swaps one file's source in place, keeping every other
// file's cached artifacts valid. When the new source preprocesses to the
// same content hash (whitespace or comment-only edit), the existing unit —
// including its cached extraction — is kept as is. It returns the unit, or
// nil when no file of that name exists.
func (p *Project) ReplaceSource(name, src string) *FileUnit {
	return p.ReplaceSourceCtx(context.Background(), name, src)
}

// ReplaceSourceCtx is ReplaceSource under an observability context: when the
// front-end actually runs (changed content), it is recorded as
// "preprocess"/"parse" spans on ctx's tracer.
func (p *Project) ReplaceSourceCtx(ctx context.Context, name, src string) *FileUnit {
	p.mu.Lock()
	idx := -1
	for i, fu := range p.files {
		if fu.Name == name {
			idx = i
			break
		}
	}
	p.mu.Unlock()
	if idx < 0 {
		return nil
	}
	env := p.envSnapshot()
	art := p.frontend(ctx, name, src, env)
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.files[idx]
	if old.art != nil && old.art.preHash == art.preHash && !old.envStale {
		old.src = src
		return old
	}
	fu := &FileUnit{Name: name, AST: art.ast, Errs: art.errs, src: src, art: art}
	p.files[idx] = fu
	return fu
}

// Pairing is a set of barrier sites inferred to run concurrently. Sites[0]
// is the write barrier the pairing was built from.
type Pairing struct {
	Sites []*access.Site
	// Common is the shared-object set the pairing is based on.
	Common []access.Object
	// Weight is the distance product of the winning object pair (lower is
	// a closer, more confident pairing).
	Weight int
}

// Writer returns the originating write-side barrier.
func (pr *Pairing) Writer() *access.Site { return pr.Sites[0] }

// Readers returns the paired sites other than the originating writer.
func (pr *Pairing) Readers() []*access.Site { return pr.Sites[1:] }

// String renders the pairing.
func (pr *Pairing) String() string {
	s := fmt.Sprintf("pairing[w=%d] %s(%s)", pr.Weight, pr.Sites[0].Fn.Name, pr.Sites[0].Name)
	for _, r := range pr.Sites[1:] {
		s += fmt.Sprintf(" <-> %s(%s)", r.Fn.Name, r.Name)
	}
	return s
}

// Timing is the per-phase cost breakdown of one Analyze call.
type Timing struct {
	// Extract covers per-file table building and access extraction (zero
	// for files served from the incremental cache).
	Extract time.Duration
	// Pair covers the global Algorithm 1 pass.
	Pair time.Duration
	// Check covers the deviation checkers.
	Check time.Duration
}

// Result is the outcome of Analyze.
type Result struct {
	Timing   Timing
	Sites    []*access.Site
	Pairings []*Pairing
	// Unpaired are barrier sites not in any pairing.
	Unpaired []*access.Site
	// ImplicitIPC are write barriers left unpaired because a wake-up call
	// closer than any shared object acts as the implicit read barrier.
	ImplicitIPC []*access.Site
	Findings    []*Finding
	// ParseErrors aggregates per-file diagnostics.
	ParseErrors []error
	// Inferred lists the functions the interprocedural fixpoint classified
	// as implicit barriers (nil when InterprocDepth is 0).
	Inferred []semprop.InferredFn
	// CallGraph holds the interprocedural call-graph statistics (zero when
	// InterprocDepth is 0).
	CallGraph callgraph.Stats
	// Incremental reports per-file cache reuse for this call. Excluded from
	// ResultView so incremental and cold runs serialize identically.
	Incremental IncrementalStats
}

// Analyze runs extraction, pairing and checking over every file.
func (p *Project) Analyze(opts Options) *Result {
	res, _ := p.analyze(context.Background(), opts)
	return res
}

// AnalyzeParallel is Analyze with request-scoped cancellation: per-file
// extraction and per-pairing checking fan out across a bounded worker pool,
// and the analysis aborts between work items as soon as ctx is canceled or
// times out, returning ctx's error. This is the entry point the serving
// subsystem (internal/service) and the CLIs route through.
func (p *Project) AnalyzeParallel(ctx context.Context, opts Options) (*Result, error) {
	return p.analyze(ctx, opts)
}

// analyze is the shared pipeline behind Analyze and AnalyzeParallel.
func (p *Project) analyze(ctx context.Context, opts Options) (*Result, error) {
	if opts.MinSharedObjects <= 0 {
		opts.MinSharedObjects = 2
	}
	// Serialize runs on this project: runs swap per-unit artifact records.
	p.runMu.Lock()
	defer p.runMu.Unlock()
	ctx, asp := obs.Start(ctx, "analyze")
	defer asp.End()
	res := &Result{}
	fp := opts.Fingerprint()

	env := p.envSnapshot()
	p.mu.Lock()
	files := make([]*FileUnit, len(p.files))
	copy(files, p.files)
	p.mu.Unlock()
	asp.Add("files", int64(len(files)))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	phaseStart := time.Now()

	// Phase 0: re-run the front-end for units dirtied by Define/AddHeader,
	// so every unit's artifacts are keyed by current content.
	p.refreshStale(ctx, files, env, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Interprocedural mode: build the cross-file call graph and run the
	// barrier-semantics fixpoint before extraction, so every file's
	// exploration sees the inferred implicit barriers and can splice callees
	// across file boundaries. Both phases are cheap and project-wide, so
	// they always run; the per-file extract cache stays sound because its
	// keys fold in each file's dependency-closure hash — a one-file edit
	// re-keys (and so re-extracts) every transitive caller, and only those.
	var resolve func(file string) func(string) *cast.FuncDecl
	var inferredNames map[string]memmodel.BarrierKind
	var closures map[string]string
	if opts.InterprocDepth > 0 {
		cgf := make([]callgraph.File, 0, len(files))
		for _, fu := range files {
			cgf = append(cgf, callgraph.File{Name: fu.Name, AST: fu.AST})
		}
		_, gsp := obs.Start(ctx, "callgraph")
		g := callgraph.Build(cgf)
		res.CallGraph = g.Stats()
		gsp.Add("functions", int64(res.CallGraph.Functions))
		gsp.Add("edges", int64(res.CallGraph.Edges))
		gsp.Add("unresolved", int64(res.CallGraph.Unresolved))
		gsp.End()
		_, ssp := obs.Start(ctx, "semprop")
		inf := semprop.Infer(g, semprop.Options{ExtraFull: opts.Access.ExtraBarrierSemantics})
		res.Inferred = inf.Functions()
		ssp.Add("inferred", int64(len(res.Inferred)))
		ssp.End()
		inferredNames = inf.NameKinds()
		resolve = g.ResolverFor
		closures = interprocClosures(g.FileDeps(), files)
	}

	// Phase 1: per-file extraction, in parallel. A unit whose artifact
	// record already carries sites for the wanted key is served in place; a
	// key found in the shared stage cache (e.g. computed by a clone) is
	// adopted without running; only genuinely new (file content × options ×
	// closure) combinations execute.
	ectx, esp := obs.Start(ctx, "extract")
	var reused, recomputed atomic.Int64
	extractCache := p.stages.Stage(stageExtract)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, fu := range files {
		p.mu.Lock()
		art := fu.art
		p.mu.Unlock()
		want := extractKeyFor(fp, fu.Name, art.preHash, closures[fu.Name])
		if art.sitesKey == want {
			reused.Add(1)
			p.mu.Lock()
			fu.Table, fu.Sites = art.table, art.sites
			p.mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(fu *FileUnit, art *artifacts, want rescache.Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // canceled: leave the unit's artifacts as they were
			}
			v, hit, _ := extractCache.Do(want, func() (any, error) {
				recomputed.Add(1)
				table := p.tableFor(fu.Name, art)
				aopts := opts.Access
				if opts.InterprocDepth > 0 {
					aopts.InferredSemantics = inferredNames
					aopts.Resolve = resolve(fu.Name)
					aopts.InterprocDepth = opts.InterprocDepth
				}
				ex := access.NewExtractor(fu.Name, table, aopts)
				sites := ex.ExtractFileCtx(ectx, art.ast)
				return &extractArtifact{table: table, sites: sites}, nil
			})
			if hit {
				reused.Add(1)
			}
			ea := v.(*extractArtifact)
			next := *art
			next.table, next.sites, next.sitesKey = ea.table, ea.sites, want
			p.mu.Lock()
			fu.art = &next
			fu.Table, fu.Sites = ea.table, ea.sites
			p.mu.Unlock()
		}(fu, art, want)
	}
	wg.Wait()
	res.Timing.Extract = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		esp.End()
		return nil, err
	}

	for _, fu := range files {
		res.Sites = append(res.Sites, fu.Sites...)
		res.ParseErrors = append(res.ParseErrors, fu.Errs...)
	}
	res.Incremental = IncrementalStats{
		FilesTotal:      len(files),
		FilesReused:     int(reused.Load()),
		FilesRecomputed: int(recomputed.Load()),
	}
	esp.Add("files", int64(len(files)))
	esp.Add("files_reused", reused.Load())
	esp.Add("files_recomputed", recomputed.Load())
	esp.Add("sites", int64(len(res.Sites)))
	esp.End()
	if opts.InterprocDepth > 0 {
		// Cross-file inlining makes the same physical barrier visible from
		// callers in other files; keep the richest view, as per-file
		// extraction already does within one file.
		res.Sites = dedupSites(res.Sites)
	}
	sortSites(res.Sites)

	// Phase 2: global pairing (Algorithm 1).
	phaseStart = time.Now()
	_, psp := obs.Start(ctx, "pair")
	pairer := newPairer(res.Sites, opts)
	res.Pairings, res.Unpaired, res.ImplicitIPC = pairer.run()
	psp.Add("pairings", int64(len(res.Pairings)))
	psp.Add("unpaired", int64(len(res.Unpaired)))
	psp.Add("implicit_ipc", int64(len(res.ImplicitIPC)))
	psp.Add("candidates_pruned", int64(pairer.pruned))
	psp.End()
	res.Timing.Pair = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: checking, fanned out per pairing.
	phaseStart = time.Now()
	_, ksp := obs.Start(ctx, "check")
	ck := &checker{opts: opts}
	findings, err := ck.checkParallel(ctx, res, workers)
	if err != nil {
		ksp.End()
		return nil, err
	}
	res.Findings = findings
	ksp.Add("findings", int64(len(res.Findings)))
	ksp.End()
	res.Timing.Check = time.Since(phaseStart)
	return res, nil
}

// dedupSites collapses sites with the same canonical barrier identity,
// keeping the richest view (first seen wins ties), preserving input order.
func dedupSites(sites []*access.Site) []*access.Site {
	best := map[string]*access.Site{}
	var order []string
	for _, s := range sites {
		id := s.ID()
		cur, ok := best[id]
		if !ok {
			best[id] = s
			order = append(order, id)
			continue
		}
		if s.Richness() > cur.Richness() {
			best[id] = s
		}
	}
	out := make([]*access.Site, 0, len(order))
	for _, id := range order {
		out = append(out, best[id])
	}
	return out
}

func sortSites(sites []*access.Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
}

// ---------------------------------------------------------------------------
// Pairing (Algorithm 1)

type pairer struct {
	sites []*access.Site
	opts  Options
	// objIndex maps each object to the sites that access it (the
	// obj_to_barriers hash of Algorithm 1).
	objIndex map[access.Object][]*access.Site
	// objDist caches per-site minimal distances per object.
	objDist map[*access.Site]map[access.Object]int
	// ids caches Site.ID per site: the same-physical-barrier test inside
	// get_pair runs per candidate, and formatting the ID there dominates.
	ids     map[*access.Site]string
	generic map[string]bool
	// pruned counts tentative pairing candidates that did not survive the
	// mutual-best handshake (observability counter; see internal/obs).
	pruned int
}

type candidate struct {
	other  *access.Site
	weight int
	o1, o2 access.Object
}

func newPairer(sites []*access.Site, opts Options) *pairer {
	pr := &pairer{
		sites:    sites,
		opts:     opts,
		objIndex: map[access.Object][]*access.Site{},
		objDist:  map[*access.Site]map[access.Object]int{},
		ids:      map[*access.Site]string{},
		generic:  map[string]bool{},
	}
	for _, g := range opts.GenericStructs {
		pr.generic[g] = true
	}
	for _, s := range sites {
		objs := pr.filteredObjects(s)
		pr.objDist[s] = objs
		pr.ids[s] = s.ID()
		for o := range objs {
			pr.objIndex[o] = append(pr.objIndex[o], s)
		}
	}
	return pr
}

// filteredObjects returns the site's objects minus generic-struct noise.
// When no object is filtered — the common case — it returns the site's
// shared memoized map directly; objDist consumers never mutate it.
func (pr *pairer) filteredObjects(s *access.Site) map[access.Object]int {
	all := s.Objects()
	drop := false
	for o := range all {
		if pr.generic[o.Struct] {
			drop = true
			break
		}
	}
	if !drop {
		return all
	}
	out := make(map[access.Object]int, len(all))
	for o, d := range all {
		if pr.generic[o.Struct] {
			continue
		}
		out[o] = d
	}
	return out
}

// isWriteSide reports whether the site plays the write-barrier role.
func isWriteSide(s *access.Site) bool {
	return s.Kind.OrdersWrites()
}

// run executes Algorithm 1 and returns pairings, unpaired sites, and
// implicit-IPC writers.
func (pr *pairer) run() (pairings []*Pairing, unpaired, implicit []*access.Site) {
	// tentative[s] holds the best pairing candidate found from/for s.
	tentative := map[*access.Site][]candidate{}

	for _, b := range pr.sites {
		if !isWriteSide(b) {
			continue
		}
		objs := pr.objDist[b]
		best := candidate{weight: -1}
		// foreach (o1, o2) in make_pairs(b->objs)
		olist := sortedObjects(objs)
		for i := 0; i < len(olist); i++ {
			for j := i + 1; j < len(olist); j++ {
				o1, o2 := olist[i], olist[j]
				myWeight := weightOf(objs[o1]) * weightOf(objs[o2])
				pair, pairWeight := pr.getPair(b, o1, o2)
				if pair == nil {
					continue
				}
				w := myWeight * pairWeight
				if (best.weight < 0 || w < best.weight) &&
					(b.Orders(o1, o2) || pair.Orders(o1, o2)) {
					best = candidate{other: pair, weight: w, o1: o1, o2: o2}
				}
			}
		}
		// Ablation path: with MinSharedObjects == 1, a single common object
		// suffices (the paper requires two; §6.4's precision depends on it).
		if pr.opts.MinSharedObjects == 1 && best.other == nil {
			for _, o := range olist {
				pair, pairWeight := pr.getSingle(b, o)
				if pair == nil {
					continue
				}
				w := weightOf(objs[o]) * pairWeight
				if best.weight < 0 || w < best.weight {
					best = candidate{other: pair, weight: w, o1: o, o2: o}
				}
			}
		}
		if best.other != nil {
			// Implicit IPC check (§4.2): when the wake-up call is closer to
			// the barrier than the pairing's shared objects, the barrier
			// orders the wake-up; leave it unpaired.
			if b.WakeUpAfter >= 0 && b.WakeUpAfter <= minObjDistance(b, best.o1, best.o2) {
				implicit = append(implicit, b)
				continue
			}
			tentative[b] = append(tentative[b], best)
			tentative[best.other] = append(tentative[best.other], candidate{other: b, weight: best.weight, o1: best.o1, o2: best.o2})
		} else if b.WakeUpAfter >= 0 {
			implicit = append(implicit, b)
		}
	}

	// Keep only the lowest-weight pairing per barrier.
	bestOf := map[*access.Site]candidate{}
	for s, cands := range tentative {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.weight < best.weight {
				best = c
			}
		}
		bestOf[s] = best
	}

	// Build the pairing array: a pairing survives only when both sides
	// still select each other after pruning.
	tentativeTotal := 0
	for _, cands := range tentative {
		tentativeTotal += len(cands)
	}
	kept := 0
	paired := map[*access.Site]bool{}
	for _, b := range pr.sites {
		if !isWriteSide(b) || paired[b] {
			continue
		}
		c, ok := bestOf[b]
		if !ok {
			continue
		}
		back, ok := bestOf[c.other]
		if !ok || back.other != b {
			continue
		}
		kept += 2 // b's candidate and the reciprocal one survive
		pairing := &Pairing{Sites: []*access.Site{b, c.other}, Weight: c.weight}
		pairing.Common = commonObjects(pr.objDist[b], pr.objDist[c.other])
		paired[b] = true
		paired[c.other] = true
		pairings = append(pairings, pairing)
	}

	// Extension step: unpaired barriers whose object set contains the
	// pairing's common objects join the pairing (multi-barrier pairings).
	for _, pg := range pairings {
		for _, s := range pr.sites {
			if paired[s] || len(pg.Common) < pr.opts.MinSharedObjects {
				continue
			}
			if containsAll(pr.objDist[s], pg.Common) {
				pg.Sites = append(pg.Sites, s)
				paired[s] = true
			}
		}
	}

	pr.pruned = tentativeTotal - kept

	// Pairings built over the same common-object set describe one protocol
	// (Figure 5: the seqcount duos form a single four-barrier pairing).
	pairings = mergeByCommon(pairings)

	for _, s := range pr.sites {
		if !paired[s] && !isImplicitMember(s, implicit) {
			unpaired = append(unpaired, s)
		}
	}
	return pairings, unpaired, implicit
}

// getPair implements get_pair of Algorithm 1: the other site, surrounded by
// both o1 and o2, with the lowest distance product.
func (pr *pairer) getPair(b *access.Site, o1, o2 access.Object) (*access.Site, int) {
	s1 := pr.objIndex[o1]
	s2 := pr.objIndex[o2]
	in2 := map[*access.Site]bool{}
	for _, s := range s2 {
		in2[s] = true
	}
	var match *access.Site
	bestW := -1
	for _, s := range s1 {
		if s == b || !in2[s] {
			continue
		}
		if pr.ids[s] == pr.ids[b] {
			continue // same physical barrier viewed from another function
		}
		w := weightOf(pr.objDist[s][o1]) * weightOf(pr.objDist[s][o2])
		if bestW < 0 || w < bestW {
			bestW = w
			match = s
		}
	}
	return match, bestW
}

// getSingle is the MinSharedObjects==1 ablation variant of getPair: the
// other site sharing just o, with the lowest distance.
func (pr *pairer) getSingle(b *access.Site, o access.Object) (*access.Site, int) {
	var match *access.Site
	bestW := -1
	for _, s := range pr.objIndex[o] {
		if s == b || pr.ids[s] == pr.ids[b] {
			continue
		}
		w := weightOf(pr.objDist[s][o])
		if bestW < 0 || w < bestW {
			bestW = w
			match = s
		}
	}
	return match, bestW
}

// weightOf maps a distance to a multiplicative weight; distance 0 (the
// barrier's own combined access) weighs 1.
func weightOf(d int) int {
	if d <= 0 {
		return 1
	}
	return d
}

func minObjDistance(s *access.Site, objs ...access.Object) int {
	min := -1
	dist := s.Objects()
	for _, o := range objs {
		if d, ok := dist[o]; ok && (min < 0 || d < min) {
			min = d
		}
	}
	if min < 0 {
		return 1 << 30
	}
	return min
}

func sortedObjects(m map[access.Object]int) []access.Object {
	out := make([]access.Object, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Struct != out[j].Struct {
			return out[i].Struct < out[j].Struct
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func commonObjects(a, b map[access.Object]int) []access.Object {
	var out []access.Object
	for o := range a {
		if _, ok := b[o]; ok {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Struct != out[j].Struct {
			return out[i].Struct < out[j].Struct
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func containsAll(objs map[access.Object]int, want []access.Object) bool {
	if len(want) == 0 {
		return false
	}
	for _, o := range want {
		if _, ok := objs[o]; !ok {
			return false
		}
	}
	return true
}

// mergeByCommon coalesces pairings with identical common-object sets.
func mergeByCommon(pairings []*Pairing) []*Pairing {
	byKey := map[string]*Pairing{}
	var out []*Pairing
	for _, pg := range pairings {
		key := ""
		for _, o := range pg.Common {
			key += o.String() + "|"
		}
		ex, ok := byKey[key]
		if !ok {
			byKey[key] = pg
			out = append(out, pg)
			continue
		}
		for _, s := range pg.Sites {
			dup := false
			for _, have := range ex.Sites {
				if have == s {
					dup = true
					break
				}
			}
			if !dup {
				ex.Sites = append(ex.Sites, s)
			}
		}
		if pg.Weight < ex.Weight {
			ex.Weight = pg.Weight
		}
	}
	return out
}

func isImplicitMember(s *access.Site, implicit []*access.Site) bool {
	for _, i := range implicit {
		if i == s {
			return true
		}
	}
	return false
}
