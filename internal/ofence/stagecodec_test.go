package ofence

import (
	"context"
	"encoding/json"
	"testing"

	"ofence/internal/rescache"
)

// analyzeJSONWithStages runs a two-file analysis over the given stage
// family and returns the serialized result.
func analyzeJSONWithStages(t *testing.T, stages *rescache.Stages) []byte {
	t.Helper()
	p := NewProjectWithStages(stages)
	p.AddSources([]SourceFile{
		{Name: "w.c", Src: incWriter},
		{Name: "r.c", Src: incReaderBuggy},
	})
	res, err := p.AnalyzeParallel(context.Background(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := res.View()
	data, err := json.Marshal(&v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPreprocessStageStoreRoundTrip: a fresh stage family (a "restarted
// process") sharing only the ArtifactStore serves the preprocess artifacts
// from blobs, and the analysis output is byte-identical to the cold run.
func TestPreprocessStageStoreRoundTrip(t *testing.T) {
	store := rescache.NewMemStore(0)

	cold := rescache.NewStages(0)
	cold.AttachStore(store, StageCodecs())
	coldJSON := analyzeJSONWithStages(t, cold)
	if st := cold.Stats()["preprocess"]; st.StorePuts == 0 {
		t.Fatalf("cold run published no preprocess blobs: %+v", st)
	}

	warm := rescache.NewStages(0)
	warm.AttachStore(store, StageCodecs())
	warmJSON := analyzeJSONWithStages(t, warm)
	st := warm.Stats()["preprocess"]
	if st.StoreHits != 2 {
		t.Fatalf("store hits = %d, want 2 (stats %+v)", st.StoreHits, st)
	}
	if st.Misses != 0 {
		t.Fatalf("preprocess ran %d times despite store blobs", st.Misses)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Fatalf("store-served analysis diverged:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// TestPreprocessStageStoreRoundTripDisk is the same over a disk store with
// a close/reopen in between — the restart-survival contract.
func TestPreprocessStageStoreRoundTripDisk(t *testing.T) {
	dir := t.TempDir()
	store, err := rescache.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := rescache.NewStages(0)
	cold.AttachStore(store, StageCodecs())
	coldJSON := analyzeJSONWithStages(t, cold)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := rescache.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	warm := rescache.NewStages(0)
	warm.AttachStore(store2, StageCodecs())
	warmJSON := analyzeJSONWithStages(t, warm)
	if st := warm.Stats()["preprocess"]; st.StoreHits != 2 || st.Misses != 0 {
		t.Fatalf("disk round trip: %+v", st)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Fatal("disk-served analysis diverged from cold run")
	}
}

// TestPreprocessCodecErrorStrings: diagnostics survive the byte round trip
// as strings.
func TestPreprocessCodecErrorStrings(t *testing.T) {
	store := rescache.NewMemStore(0)
	const bad = "#include \"no/such/header.h\"\nint x;\n"

	cold := rescache.NewStages(0)
	cold.AttachStore(store, StageCodecs())
	p1 := NewProjectWithStages(cold)
	fu1 := p1.AddSource("bad.c", bad)

	warm := rescache.NewStages(0)
	warm.AttachStore(store, StageCodecs())
	p2 := NewProjectWithStages(warm)
	fu2 := p2.AddSource("bad.c", bad)

	if len(fu1.Errs) != len(fu2.Errs) {
		t.Fatalf("error counts diverge: %d vs %d", len(fu1.Errs), len(fu2.Errs))
	}
	for i := range fu1.Errs {
		if fu1.Errs[i].Error() != fu2.Errs[i].Error() {
			t.Fatalf("error %d diverged: %q vs %q", i, fu1.Errs[i], fu2.Errs[i])
		}
	}
}
