package ofence_test

import (
	"math/rand"
	"testing"

	"ofence/internal/corpus"
	ofence "ofence/internal/ofence"
)

// The pipeline must never panic on malformed input: Smatch-style resilience
// means a broken file degrades to parse diagnostics, not a crash.

func TestAnalyzeSurvivesMutatedSources(t *testing.T) {
	cfg := corpus.DefaultConfig(99)
	cfg.Counts = map[corpus.PatternKind]int{
		corpus.InitFlag: 4, corpus.Seqcount: 1, corpus.Unneeded: 1,
	}
	c := corpus.Generate(cfg)
	rng := rand.New(rand.NewSource(7))

	mutate := func(src string) string {
		b := []byte(src)
		n := 1 + rng.Intn(8)
		for i := 0; i < n && len(b) > 0; i++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0: // flip to random printable
				b[pos] = byte(32 + rng.Intn(95))
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			case 2: // duplicate
				b = append(b[:pos], append([]byte{b[pos]}, b[pos:]...)...)
			}
		}
		return string(b)
	}

	for round := 0; round < 50; round++ {
		p := ofence.NewProject()
		for _, name := range c.Order {
			p.AddSource(name, mutate(c.Files[name]))
		}
		res := p.Analyze(ofence.DefaultOptions()) // must not panic
		_ = res.Findings
		_ = res.View() // nor the serialization
	}
}

func TestAnalyzeSurvivesTruncatedSources(t *testing.T) {
	cfg := corpus.DefaultConfig(3)
	cfg.Counts = map[corpus.PatternKind]int{corpus.InitFlag: 3}
	c := corpus.Generate(cfg)
	for _, name := range c.Order {
		src := c.Files[name]
		for cut := 0; cut < len(src); cut += 37 {
			p := ofence.NewProject()
			p.AddSource(name, src[:cut])
			p.Analyze(ofence.DefaultOptions()) // must not panic
		}
	}
}

func TestAnalyzeEmptyAndDegenerate(t *testing.T) {
	for _, src := range []string{
		"",
		";",
		"\x00\x01\x02",
		"#define",
		"#include",
		"struct s",
		"void f(",
		"/*",
		`"`,
		"int x = ",
		"#if 1",
		"}}}}}}",
	} {
		p := ofence.NewProject()
		p.AddSource("d.c", src)
		p.Analyze(ofence.DefaultOptions()) // must not panic
	}
}
