package ofence

import (
	"fmt"
	"testing"
)

// closureUnits builds synthetic FileUnits whose preHash is derived from the
// name, the way the differential needs — content identity per file.
func closureUnits(names []string, bump map[string]int) []*FileUnit {
	out := make([]*FileUnit, 0, len(names))
	for _, n := range names {
		out = append(out, &FileUnit{
			Name: n,
			art:  &artifacts{preHash: fmt.Sprintf("pre(%s)#%d", n, bump[n])},
		})
	}
	return out
}

// TestClosureSCCDifferential pins interprocClosuresSCC to interprocClosures'
// invalidation behavior: the literal key strings differ (closure-v1 vs
// closure-v2), but two files must share a key under one scheme exactly when
// they share it under the other, and editing one file must re-key exactly
// the same set of files under both.
func TestClosureSCCDifferential(t *testing.T) {
	names := []string{"a.c", "b.c", "c.c", "d.c", "e.c", "f.c", "g.c"}
	deps := map[string][]string{
		// a → b → c → a is a cycle; d hangs off the cycle; e → f is a
		// separate chain; g is isolated. "x.c" is a dangling dep (not a
		// project file) that both schemes must ignore.
		"a.c": {"b.c"},
		"b.c": {"c.c"},
		"c.c": {"a.c", "d.c"},
		"e.c": {"f.c", "x.c"},
	}

	check := func(bump map[string]int) (map[string]string, map[string]string) {
		units := closureUnits(names, bump)
		v1 := interprocClosures(deps, units)
		v2 := interprocClosuresSCC(deps, units)
		for _, a := range names {
			for _, b := range names {
				if (v1[a] == v1[b]) != (v2[a] == v2[b]) {
					t.Fatalf("bump=%v: key sharing disagrees for %s vs %s: v1 %t, v2 %t",
						bump, a, b, v1[a] == v1[b], v2[a] == v2[b])
				}
			}
		}
		return v1, v2
	}

	base1, base2 := check(nil)
	// Sanity on the base shape: the cycle members share one key.
	if base2["a.c"] != base2["b.c"] || base2["b.c"] != base2["c.c"] {
		t.Fatalf("cycle members should share a key: %v", base2)
	}
	if base2["g.c"] == base2["e.c"] {
		t.Fatal("unrelated files share a key")
	}

	// Editing any one file must re-key the same file set under both schemes.
	for _, edited := range names {
		v1, v2 := check(map[string]int{edited: 1})
		for _, n := range names {
			c1 := v1[n] != base1[n]
			c2 := v2[n] != base2[n]
			if c1 != c2 {
				t.Errorf("edit %s: %s invalidation disagrees: v1 changed %t, v2 changed %t",
					edited, n, c1, c2)
			}
		}
	}

	// Editing a cycle member must re-key the whole cycle and its caller d's
	// key stays (d is a dependency of the cycle, not a dependent).
	v1, _ := check(map[string]int{"b.c": 1})
	for _, n := range []string{"a.c", "b.c", "c.c"} {
		if v1[n] == base1[n] {
			t.Errorf("edit b.c: %s kept its key", n)
		}
	}
	if v1["d.c"] != base1["d.c"] {
		t.Error("edit b.c: d.c (a dependency, not a dependent) was re-keyed")
	}
}
