package ofence

import (
	"context"
	"runtime"
	"sync"

	"ofence/internal/access"
	"ofence/internal/obs"
)

// This file is the pairing engine: Algorithm 1 rebuilt for kernel-scale
// site sets. The paper's reference formulation keeps an obj_to_barriers
// hash of map[Object][]*Site and re-derives a candidate set per (o1, o2)
// object pair, which at tens of thousands of barrier sites makes pairing
// the dominant analysis phase. The engine here keeps the algorithm's
// results byte-identical while changing the data layer and execution model:
//
//   - objects are interned into dense uint32 IDs (internal/access.Interner)
//     assigned in canonical (struct, field) order, so every per-site object
//     set is a sorted ID slice and set operations are merge scans;
//   - an inverted index objectID → ID-sorted []siteRef (each ref carrying
//     the precomputed distance weight) replaces get_pair's per-call set
//     allocation with a two-pointer intersection;
//   - a per-(o1, o2) lower bound — the site's own weight times the minimum
//     indexed weight of each object — skips candidate pairs that cannot
//     beat the best candidate found so far (counted as
//     candidates_pruned_bound);
//   - the per-write-barrier candidate search is sharded across a bounded
//     worker pool; because each site's best candidate depends only on the
//     immutable index, the shards race on nothing, and the tentative
//     candidates they produce are merged in canonical site order, so the
//     output is byte-identical to the sequential path at any GOMAXPROCS.
//
// Ties between equal-weight candidates are broken by canonical site order
// (the position-sorted order of the site slice): the two-pointer scans run
// in ascending site order and keep the first minimum, so the earliest site
// wins — stable across map-iteration and shard orders.

// PairStats reports the pairing engine's execution counters for one run.
type PairStats struct {
	// Shards is the number of worker shards the candidate search ran on
	// (1 when the site set is too small to be worth fanning out).
	Shards int
	// IndexProbes counts inverted-index intersections actually performed
	// (get_pair/get_single calls that survived the bound cutoff).
	IndexProbes int64
	// PrunedBound counts candidate object pairs skipped because their
	// weight lower bound could not beat the current best candidate.
	PrunedBound int64
	// Pruned counts tentative pairing candidates that did not survive the
	// mutual-best handshake (the pre-existing candidates_pruned counter).
	Pruned int64
	// Margins maps a writer site ID (Site.ID) to its candidate-weight
	// margin: the winning weight and the best PROBED alternative. The
	// confidence ranker (internal/rank) uses the margin as evidence of how
	// decisively the pairing won. The runner-up is optimistic — candidate
	// pairs skipped by the weight lower bound are never probed, so a true
	// runner-up can be missed — which only ever overstates the margin.
	Margins map[string]PairMargin
}

// PairMargin is one writer's winning candidate weight and the lowest weight
// any other probed partner site achieved (-1 when no alternative partner
// was probed: a decisive win).
type PairMargin struct {
	Weight   int
	RunnerUp int
}

// siteRef is one inverted-index posting: a site (by canonical index) that
// accesses the object, with the precomputed weight of its closest access.
type siteRef struct {
	site int32
	w    int32
}

// candidate is the best tentative partner found for a site, by index.
type candidate struct {
	other  int32 // canonical site index, or -1 for none
	weight int
	o1, o2 uint32
	// second is the lowest weight any probed partner OTHER than `other`
	// achieved during the search, or -1 when none was probed. It never
	// influences candidate selection — it only feeds PairStats.Margins.
	second int
}

type pairer struct {
	sites   []*access.Site
	opts    Options
	workers int

	// in is the project-level interned-object table; all slices below are
	// keyed by its dense IDs.
	in *access.Interner
	// siteObjs holds each site's generic-filtered object set as an
	// ID-sorted distance slice (the objDist maps of the reference
	// formulation).
	siteObjs [][]access.ObjDist
	// beforeIDs/afterIDs hold each site's window-side object IDs, sorted,
	// so the Orders check is two binary searches.
	beforeIDs, afterIDs [][]uint32
	// index is the inverted pairing index: objectID → postings sorted by
	// canonical site index.
	index [][]siteRef
	// minW[o] is the minimum posting weight of object o: the lower bound
	// any candidate's distance weight for o can contribute.
	minW []int32
	// ids caches Site.ID per site for the same-physical-barrier test.
	ids []string

	stats PairStats
}

// newPairer builds the interned data layer over position-sorted sites.
func newPairer(sites []*access.Site, opts Options) *pairer {
	if opts.MinSharedObjects <= 0 {
		opts.MinSharedObjects = 2
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pr := &pairer{
		sites:     sites,
		opts:      opts,
		workers:   workers,
		siteObjs:  make([][]access.ObjDist, len(sites)),
		beforeIDs: make([][]uint32, len(sites)),
		afterIDs:  make([][]uint32, len(sites)),
		ids:       make([]string, len(sites)),
	}
	generic := make(map[string]bool, len(opts.GenericStructs))
	for _, g := range opts.GenericStructs {
		generic[g] = true
	}
	keep := func(o access.Object) bool { return !generic[o.Struct] }

	pr.in = access.InternSites(sites)
	pr.forEachSite(func(i int) {
		s := sites[i]
		pr.siteObjs[i] = pr.in.ObjDists(s, keep)
		pr.beforeIDs[i] = pr.in.SideIDs(s.Before)
		pr.afterIDs[i] = pr.in.SideIDs(s.After)
		pr.ids[i] = s.ID()
	})

	// Build the inverted index with one counting pass so postings land in
	// exactly-sized slices, in ascending site order.
	counts := make([]int32, pr.in.Len())
	for _, ods := range pr.siteObjs {
		for _, od := range ods {
			counts[od.ID]++
		}
	}
	pr.index = make([][]siteRef, pr.in.Len())
	pr.minW = make([]int32, pr.in.Len())
	for o := range pr.index {
		pr.index[o] = make([]siteRef, 0, counts[o])
	}
	for i, ods := range pr.siteObjs {
		for _, od := range ods {
			w := weightOf32(od.Dist)
			pr.index[od.ID] = append(pr.index[od.ID], siteRef{site: int32(i), w: w})
			if mw := pr.minW[od.ID]; mw == 0 || w < mw {
				pr.minW[od.ID] = w
			}
		}
	}
	return pr
}

// forEachSite fans an index-addressed per-site builder out over the worker
// pool. Each index is written by exactly one goroutine, so the result is
// independent of scheduling.
func (pr *pairer) forEachSite(fn func(i int)) {
	n := len(pr.sites)
	if pr.workers <= 1 || n < 64 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int32 = -1
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < pr.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				next++
				i := int(next)
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// isWriteSide reports whether the site plays the write-barrier role.
func isWriteSide(s *access.Site) bool {
	return s.Kind.OrdersWrites()
}

// run executes Algorithm 1 and returns pairings, unpaired sites, and
// implicit-IPC writers. The candidate search is sharded across the worker
// pool; everything order-sensitive happens afterwards, single-threaded, in
// canonical site order.
func (pr *pairer) run(ctx context.Context) (pairings []*Pairing, unpaired, implicit []*access.Site) {
	n := len(pr.sites)
	bests := pr.computeBests(ctx)

	// Merge the per-shard tentative candidates deterministically: iterate
	// writers in canonical site order, exactly like the sequential
	// formulation's single loop.
	tentative := make(map[int32][]candidate, n)
	for i := 0; i < n; i++ {
		b := pr.sites[i]
		if !isWriteSide(b) {
			continue
		}
		best := bests[i]
		if best.other >= 0 {
			// Implicit IPC check (§4.2): when the wake-up call is closer to
			// the barrier than the pairing's shared objects, the barrier
			// orders the wake-up; leave it unpaired.
			if b.WakeUpAfter >= 0 && b.WakeUpAfter <= pr.minObjDist(i, best.o1, best.o2) {
				implicit = append(implicit, b)
				continue
			}
			tentative[int32(i)] = append(tentative[int32(i)], best)
			tentative[best.other] = append(tentative[best.other],
				candidate{other: int32(i), weight: best.weight, o1: best.o1, o2: best.o2})
			if pr.stats.Margins == nil {
				pr.stats.Margins = map[string]PairMargin{}
			}
			pr.stats.Margins[pr.ids[i]] = PairMargin{Weight: best.weight, RunnerUp: best.second}
		} else if b.WakeUpAfter >= 0 {
			implicit = append(implicit, b)
		}
	}

	// Keep only the lowest-weight pairing per barrier (first wins ties:
	// candidates were appended in canonical writer order).
	bestOf := make(map[int32]candidate, len(tentative))
	tentativeTotal := 0
	for i := int32(0); i < int32(n); i++ {
		cands, ok := tentative[i]
		if !ok {
			continue
		}
		tentativeTotal += len(cands)
		best := cands[0]
		for _, c := range cands[1:] {
			if c.weight < best.weight {
				best = c
			}
		}
		bestOf[i] = best
	}

	// Build the pairing array: a pairing survives only when both sides
	// still select each other after pruning.
	kept := 0
	paired := make([]bool, n)
	for i := int32(0); i < int32(n); i++ {
		if !isWriteSide(pr.sites[i]) || paired[i] {
			continue
		}
		c, ok := bestOf[i]
		if !ok {
			continue
		}
		back, ok := bestOf[c.other]
		if !ok || back.other != i {
			continue
		}
		kept += 2 // this candidate and the reciprocal one survive
		pairing := &Pairing{Sites: []*access.Site{pr.sites[i], pr.sites[c.other]}, Weight: c.weight}
		pairing.Common = pr.commonObjects(int(i), int(c.other))
		paired[i], paired[c.other] = true, true
		pairings = append(pairings, pairing)
	}

	// Extension step: unpaired barriers whose object set contains the
	// pairing's common objects join the pairing (multi-barrier pairings).
	// The membership threshold is loop-invariant, so pairings that can
	// never accept members skip the pass entirely, and the scan walks only
	// the index postings of the first common object — every site containing
	// the full common set necessarily appears there, in canonical order.
	for _, pg := range pairings {
		if len(pg.Common) < pr.opts.MinSharedObjects {
			continue
		}
		want := make([]uint32, 0, len(pg.Common))
		for _, o := range pg.Common {
			id, ok := pr.in.ID(o)
			if !ok {
				want = nil
				break
			}
			want = append(want, id)
		}
		if len(want) == 0 {
			continue
		}
		for _, ref := range pr.index[want[0]] {
			if paired[ref.site] {
				continue
			}
			if containsAllIDs(pr.siteObjs[ref.site], want) {
				pg.Sites = append(pg.Sites, pr.sites[ref.site])
				paired[ref.site] = true
			}
		}
	}

	pr.stats.Pruned = int64(tentativeTotal - kept)

	// Pairings built over the same common-object set describe one protocol
	// (Figure 5: the seqcount duos form a single four-barrier pairing).
	pairings = mergeByCommon(pairings)

	for i, s := range pr.sites {
		if !paired[i] && !isImplicitMember(s, implicit) {
			unpaired = append(unpaired, s)
		}
	}
	return pairings, unpaired, implicit
}

// computeBests runs the per-write-barrier candidate search, sharded over
// the worker pool. Shard boundaries never influence results: every shard
// reads the same immutable index and writes only its own slice range.
func (pr *pairer) computeBests(ctx context.Context) []candidate {
	n := len(pr.sites)
	bests := make([]candidate, n)
	shards := pr.workers
	if max := (n + 63) / 64; shards > max {
		shards = max // tiny inputs are not worth the fan-out
	}
	if shards < 1 {
		shards = 1
	}
	pr.stats.Shards = shards

	per := (n + shards - 1) / shards
	var wg sync.WaitGroup
	var mu sync.Mutex
	for s := 0; s < shards; s++ {
		lo, hi := s*per, (s+1)*per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			_, ssp := obs.Start(ctx, "pair.shard")
			defer ssp.End()
			var st PairStats
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					break // canceled: analyze surfaces the error after the phase
				}
				bests[i] = candidate{other: -1, weight: -1, second: -1}
				if isWriteSide(pr.sites[i]) {
					bests[i] = pr.bestFor(int32(i), &st)
				}
			}
			ssp.Add("sites", int64(hi-lo))
			mu.Lock()
			pr.stats.IndexProbes += st.IndexProbes
			pr.stats.PrunedBound += st.PrunedBound
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return bests
}

// bestFor finds write barrier b's lowest-weight candidate partner:
// foreach (o1, o2) in make_pairs(b->objs), intersect the two objects'
// postings, keeping the candidate with the lowest distance product. A pair
// whose weight lower bound cannot beat the best found so far is skipped
// before touching the index.
func (pr *pairer) bestFor(b int32, st *PairStats) candidate {
	objs := pr.siteObjs[b]
	best := candidate{other: -1, weight: -1, second: -1}
	// noteAlt records a probed-but-losing partner's weight for the margin
	// evidence. It never touches the selection state, so the winning
	// candidate — and therefore the pairing output — is unchanged by it.
	noteAlt := func(w int, site int32) {
		if site == best.other {
			return
		}
		if best.second < 0 || w < best.second {
			best.second = w
		}
	}
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			o1, o2 := objs[i].ID, objs[j].ID
			myWeight := int(weightOf32(objs[i].Dist)) * int(weightOf32(objs[j].Dist))
			if best.weight >= 0 && myWeight*int(pr.minW[o1])*int(pr.minW[o2]) >= best.weight {
				st.PrunedBound++
				continue
			}
			st.IndexProbes++
			pair, pairWeight, alt, altWeight := pr.getPair(b, o1, o2)
			if pair < 0 {
				continue
			}
			w := myWeight * pairWeight
			if (best.weight < 0 || w < best.weight) &&
				(pr.orders(b, o1, o2) || pr.orders(pair, o1, o2)) {
				if best.other >= 0 && best.other != pair &&
					(best.second < 0 || best.weight < best.second) {
					best.second = best.weight // dethroned winner becomes runner-up
				}
				second := best.second
				best = candidate{other: pair, weight: w, o1: o1, o2: o2, second: second}
			} else {
				noteAlt(w, pair)
			}
			if alt >= 0 {
				// The intersection's own second-best site is a probed
				// alternative too — without it, a writer with exactly one
				// object pair would always look decisively paired.
				noteAlt(myWeight*altWeight, alt)
			}
		}
	}
	// Ablation path: with MinSharedObjects == 1, a single common object
	// suffices (the paper requires two; §6.4's precision depends on it).
	if pr.opts.MinSharedObjects == 1 && best.other < 0 {
		for _, od := range objs {
			myWeight := int(weightOf32(od.Dist))
			if best.weight >= 0 && myWeight*int(pr.minW[od.ID]) >= best.weight {
				st.PrunedBound++
				continue
			}
			st.IndexProbes++
			pair, pairWeight := pr.getSingle(b, od.ID)
			if pair < 0 {
				continue
			}
			w := myWeight * pairWeight
			if best.weight < 0 || w < best.weight {
				if best.other >= 0 && best.other != pair &&
					(best.second < 0 || best.weight < best.second) {
					best.second = best.weight
				}
				second := best.second
				best = candidate{other: pair, weight: w, o1: od.ID, o2: od.ID, second: second}
			} else {
				noteAlt(w, pair)
			}
		}
	}
	return best
}

// getPair implements get_pair of Algorithm 1 as a two-pointer intersection
// of the two objects' postings: the other site, surrounded by both o1 and
// o2, with the lowest distance product. Postings are in ascending canonical
// site order and the minimum is kept strictly, so equal-weight ties resolve
// to the earliest site — the engine's deterministic tie-break. The
// second-best site of the intersection (alt, altW) is returned for the
// margin evidence only; it never influences the selected pair.
func (pr *pairer) getPair(b int32, o1, o2 uint32) (match int32, bestW int, alt int32, altW int) {
	l1, l2 := pr.index[o1], pr.index[o2]
	bid := pr.ids[b]
	match, bestW, alt, altW = -1, -1, -1, -1
	for i, j := 0, 0; i < len(l1) && j < len(l2); {
		if l1[i].site < l2[j].site {
			i++
			continue
		}
		if l1[i].site > l2[j].site {
			j++
			continue
		}
		s := l1[i].site
		if s != b && pr.ids[s] != bid { // skip the same physical barrier
			w := int(l1[i].w) * int(l2[j].w)
			if bestW < 0 || w < bestW {
				alt, altW = match, bestW
				bestW, match = w, s
			} else if altW < 0 || w < altW {
				alt, altW = s, w
			}
		}
		i++
		j++
	}
	return match, bestW, alt, altW
}

// getSingle is the MinSharedObjects==1 ablation variant of getPair: the
// other site sharing just o, with the lowest distance. Same scan order and
// tie-break as getPair.
func (pr *pairer) getSingle(b int32, o uint32) (int32, int) {
	bid := pr.ids[b]
	match, bestW := int32(-1), -1
	for _, ref := range pr.index[o] {
		if ref.site == b || pr.ids[ref.site] == bid {
			continue
		}
		if w := int(ref.w); bestW < 0 || w < bestW {
			bestW, match = w, ref.site
		}
	}
	return match, bestW
}

// orders is Site.Orders over interned side sets: one object accessed before
// the barrier and the other after (§4.2).
func (pr *pairer) orders(s int32, o1, o2 uint32) bool {
	before, after := pr.beforeIDs[s], pr.afterIDs[s]
	return (access.ContainsID(before, o1) && access.ContainsID(after, o2)) ||
		(access.ContainsID(before, o2) && access.ContainsID(after, o1))
}

// minObjDist returns the smallest distance at which site i accesses any of
// the given objects, or a huge sentinel when it accesses none.
func (pr *pairer) minObjDist(i int, objs ...uint32) int {
	min := -1
	for _, o := range objs {
		if d, ok := access.FindDist(pr.siteObjs[i], o); ok && (min < 0 || int(d) < min) {
			min = int(d)
		}
	}
	if min < 0 {
		return 1 << 30
	}
	return min
}

// commonObjects merges two sites' ID-sorted object sets. IDs are assigned
// in canonical (struct, field) order, so the merged result is already in
// the presentation order the JSON output serializes.
func (pr *pairer) commonObjects(a, b int) []access.Object {
	la, lb := pr.siteObjs[a], pr.siteObjs[b]
	var out []access.Object
	for i, j := 0, 0; i < len(la) && j < len(lb); {
		switch {
		case la[i].ID < lb[j].ID:
			i++
		case la[i].ID > lb[j].ID:
			j++
		default:
			out = append(out, pr.in.Object(la[i].ID))
			i++
			j++
		}
	}
	return out
}

// containsAllIDs reports whether the ID-sorted object set contains every
// wanted ID (want is sorted ascending and non-empty).
func containsAllIDs(objs []access.ObjDist, want []uint32) bool {
	i := 0
	for _, w := range want {
		for i < len(objs) && objs[i].ID < w {
			i++
		}
		if i >= len(objs) || objs[i].ID != w {
			return false
		}
		i++
	}
	return true
}

// weightOf maps a distance to a multiplicative weight; distance 0 (the
// barrier's own combined access) weighs 1.
func weightOf(d int) int {
	if d <= 0 {
		return 1
	}
	return d
}

// weightOf32 is weightOf over the interned distance representation.
func weightOf32(d int32) int32 {
	if d <= 0 {
		return 1
	}
	return d
}

// mergeByCommon coalesces pairings with identical common-object sets.
func mergeByCommon(pairings []*Pairing) []*Pairing {
	byKey := map[string]*Pairing{}
	var out []*Pairing
	for _, pg := range pairings {
		key := ""
		for _, o := range pg.Common {
			key += o.String() + "|"
		}
		ex, ok := byKey[key]
		if !ok {
			byKey[key] = pg
			out = append(out, pg)
			continue
		}
		for _, s := range pg.Sites {
			dup := false
			for _, have := range ex.Sites {
				if have == s {
					dup = true
					break
				}
			}
			if !dup {
				ex.Sites = append(ex.Sites, s)
			}
		}
		if pg.Weight < ex.Weight {
			ex.Weight = pg.Weight
		}
	}
	return out
}

func isImplicitMember(s *access.Site, implicit []*access.Site) bool {
	for _, i := range implicit {
		if i == s {
			return true
		}
	}
	return false
}

// PairSites runs the pairing engine (Algorithm 1) over already-extracted
// sites and returns the pairings, the sites left unpaired, and the
// implicit-IPC writers, plus the engine's execution counters. The sites are
// re-sorted into canonical position order internally, so the result does
// not depend on input order, worker count, or GOMAXPROCS. This is the
// entry point for pairing-only tooling and benchmarks; Analyze routes
// through the same engine.
func PairSites(ctx context.Context, sites []*access.Site, opts Options) (pairings []*Pairing, unpaired, implicit []*access.Site, stats PairStats) {
	sorted := make([]*access.Site, len(sites))
	copy(sorted, sites)
	sortSites(sorted)
	pr := newPairer(sorted, opts)
	pairings, unpaired, implicit = pr.run(ctx)
	return pairings, unpaired, implicit, pr.stats
}
