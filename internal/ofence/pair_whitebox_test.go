package ofence

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ofence/internal/access"
	"ofence/internal/cast"
	"ofence/internal/ctoken"
	"ofence/internal/memmodel"
	"ofence/internal/sitegen"
)

// pairFingerprint renders a pairing result into a stable string covering
// everything the JSON view serializes: site order, common objects, weights,
// unpaired and implicit-IPC site lists.
func pairFingerprint(pairings []*Pairing, unpaired, implicit []*access.Site) string {
	var sb strings.Builder
	for _, pg := range pairings {
		fmt.Fprintf(&sb, "pairing w=%d:", pg.Weight)
		for _, s := range pg.Sites {
			sb.WriteString(" " + s.ID())
		}
		sb.WriteString(" common:")
		for _, o := range pg.Common {
			sb.WriteString(" " + o.String())
		}
		sb.WriteString("\n")
	}
	sb.WriteString("unpaired:")
	for _, s := range unpaired {
		sb.WriteString(" " + s.ID())
	}
	sb.WriteString("\nimplicit:")
	for _, s := range implicit {
		sb.WriteString(" " + s.ID())
	}
	return sb.String()
}

// randomPairSites builds adversarially unstructured sites: random kinds,
// random objects from a small universe (lots of weight ties), random
// window sides and distances, occasional wake-up calls.
func randomPairSites(rng *rand.Rand, n int) []*access.Site {
	sites := make([]*access.Site, n)
	for i := range sites {
		pos := ctoken.Position{File: fmt.Sprintf("r_%02d.c", i/8), Line: 5 + (i%8)*7, Col: 1}
		kind := []memmodel.BarrierKind{memmodel.WriteBarrier, memmodel.ReadBarrier, memmodel.FullBarrier}[rng.Intn(3)]
		s := &access.Site{
			File: pos.File, Fn: &cast.FuncDecl{Name: fmt.Sprintf("f%d", i), Position: pos},
			Name: "smp_mb", Kind: kind, Pos: pos,
			WakeUpAfter: -1, NextBarrierAfter: -1,
		}
		if rng.Intn(8) == 0 {
			s.WakeUpAfter = rng.Intn(6)
		}
		for a := rng.Intn(10); a > 0; a-- {
			acc := &access.Access{
				Object:   access.Object{Struct: fmt.Sprintf("s%d", rng.Intn(4)), Field: fmt.Sprintf("f%d", rng.Intn(5))},
				Kind:     access.Load,
				Distance: rng.Intn(6) + 1, // small range: frequent ties
			}
			if rng.Intn(2) == 0 {
				acc.Before = true
				s.Before = append(s.Before, acc)
			} else {
				s.After = append(s.After, acc)
			}
		}
		sites[i] = s
	}
	return sites
}

// TestPairerMatchesLegacyOracle runs the interned/indexed engine
// differentially against the preserved pre-index pairer over structured
// (sitegen) and adversarial (random) corpora, sequentially and sharded:
// every variant must reproduce the oracle fingerprint exactly.
func TestPairerMatchesLegacyOracle(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name  string
		sites []*access.Site
		min   int
	}{}
	for seed := int64(1); seed <= 3; seed++ {
		cases = append(cases, struct {
			name  string
			sites []*access.Site
			min   int
		}{fmt.Sprintf("sitegen/seed%d", seed), sitegen.Generate(sitegen.DefaultConfig(300, seed)), 2})
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sites := randomPairSites(rng, rng.Intn(60)+4)
		min := 2
		if seed%2 == 1 {
			min = 1 // exercise the getSingle ablation path too
		}
		cases = append(cases, struct {
			name  string
			sites []*access.Site
			min   int
		}{fmt.Sprintf("random/seed%d/min%d", seed, min), sites, min})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sortSites(tc.sites)
			opts := DefaultOptions()
			opts.MinSharedObjects = tc.min

			lp := newLegacyPairer(tc.sites, opts)
			want := pairFingerprint(lp.run())

			for _, workers := range []int{1, 3, 8} {
				o := opts
				o.Workers = workers
				pr := newPairer(tc.sites, o)
				got := pairFingerprint(pr.run(ctx))
				if got != want {
					t.Fatalf("workers=%d diverges from legacy oracle:\n got:\n%s\nwant:\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestPairerTieBreakBySiteOrder is the regression test for deterministic
// tie-breaking: two readers tie exactly on weight for the same writer, and
// the winner must be the site earliest in canonical order — independent of
// the order the sites are presented in.
func TestPairerTieBreakBySiteOrder(t *testing.T) {
	mk := func(file string, kind memmodel.BarrierKind, name string) *access.Site {
		pos := ctoken.Position{File: file, Line: 10, Col: 1}
		return &access.Site{
			File: file, Fn: &cast.FuncDecl{Name: name, Position: pos},
			Name: name, Kind: kind, Pos: pos,
			WakeUpAfter: -1, NextBarrierAfter: -1,
		}
	}
	data := access.Object{Struct: "tie", Field: "data"}
	flag := access.Object{Struct: "tie", Field: "flag"}
	w := mk("a.c", memmodel.WriteBarrier, "smp_wmb")
	w.Before = append(w.Before, &access.Access{Object: data, Kind: access.Store, Distance: 1, Before: true})
	w.After = append(w.After, &access.Access{Object: flag, Kind: access.Store, Distance: 1})
	reader := func(file string) *access.Site {
		r := mk(file, memmodel.ReadBarrier, "smp_rmb")
		r.Before = append(r.Before, &access.Access{Object: flag, Kind: access.Load, Distance: 2, Before: true})
		r.After = append(r.After, &access.Access{Object: data, Kind: access.Load, Distance: 3})
		return r
	}
	r1 := reader("b.c") // canonical order: b.c before c.c — r1 must win
	r2 := reader("c.c")

	perms := [][]*access.Site{
		{w, r1, r2},
		{r2, r1, w},
		{r1, w, r2},
	}
	for i, perm := range perms {
		pairings, _, _, _ := PairSites(context.Background(), perm, DefaultOptions())
		if len(pairings) != 1 {
			t.Fatalf("perm %d: got %d pairings, want 1", i, len(pairings))
		}
		pg := pairings[0]
		if pg.Sites[0] != w || pg.Sites[1] != r1 {
			t.Fatalf("perm %d: tie broke to %s, want %s (earliest site)", i, pg.Sites[1].ID(), r1.ID())
		}
	}
}

// TestPairStatsCounters pins that the index and the bound cutoff actually
// engage on a kernel-shaped corpus — the speedup claims in
// BENCH_pairing.json depend on both.
func TestPairStatsCounters(t *testing.T) {
	sites := sitegen.Generate(sitegen.DefaultConfig(400, 11))
	opts := DefaultOptions()
	opts.Workers = 4
	_, _, _, stats := PairSites(context.Background(), sites, opts)
	if stats.Shards < 1 {
		t.Errorf("Shards = %d, want >= 1", stats.Shards)
	}
	if stats.IndexProbes == 0 {
		t.Errorf("IndexProbes = 0, want > 0")
	}
	if stats.PrunedBound == 0 {
		t.Errorf("PrunedBound = 0, want > 0: the bound cutoff never engaged")
	}
}
