package ofence

import (
	"fmt"
	"sort"
	"strings"

	"ofence/internal/access"
)

// ExplainPairing renders a human-readable account of why a pairing was
// formed: each member barrier, its role, and the accesses to the common
// shared objects with their kinds, sides and statement distances. This is
// the §5.4 transparency property ("the patch documents which shared objects
// were used to pair the barriers") extended to whole pairings, so a kernel
// developer can audit an inferred concurrency relationship directly.
func ExplainPairing(pg *Pairing) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pairing of %d barriers (weight %d)\n", len(pg.Sites), pg.Weight)
	b.WriteString("shared objects: ")
	for i, o := range pg.Common {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	b.WriteString("\n")
	for _, s := range pg.Sites {
		fmt.Fprintf(&b, "  %s in %s at %s [%s]\n", s.Name, s.Fn.Name, s.Pos, s.Kind)
		writeAccessLines(&b, pg, s.Before, true)
		writeAccessLines(&b, pg, s.After, false)
	}
	return b.String()
}

func writeAccessLines(b *strings.Builder, pg *Pairing, list []*access.Access, before bool) {
	side := "after"
	if before {
		side = "before"
	}
	// One line per (object, kind), at the closest distance.
	type key struct {
		o access.Object
		k access.Kind
	}
	best := map[key]int{}
	for _, a := range list {
		if !objectInCommon(pg, a.Object) {
			continue
		}
		kk := key{a.Object, a.Kind}
		if d, ok := best[kk]; !ok || a.Distance < d {
			best[kk] = a.Distance
		}
	}
	keys := make([]key, 0, len(best))
	for kk := range best {
		keys = append(keys, kk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if best[keys[i]] != best[keys[j]] {
			return best[keys[i]] < best[keys[j]]
		}
		return keys[i].o.String() < keys[j].o.String()
	})
	for _, kk := range keys {
		fmt.Fprintf(b, "    %-5s of %-30s %s barrier, distance %d\n",
			kk.k, kk.o, side, best[kk])
	}
}

func objectInCommon(pg *Pairing, o access.Object) bool {
	for _, c := range pg.Common {
		if c == o {
			return true
		}
	}
	return false
}

// ExplainResult renders every pairing plus the unpaired/implicit site
// summary — the full audit trail of one analysis.
func ExplainResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d barrier sites, %d pairings, %d unpaired, %d implicit-IPC\n\n",
		len(res.Sites), len(res.Pairings), len(res.Unpaired), len(res.ImplicitIPC))
	for i, pg := range res.Pairings {
		fmt.Fprintf(&b, "#%d ", i+1)
		b.WriteString(ExplainPairing(pg))
		b.WriteString("\n")
	}
	if len(res.ImplicitIPC) > 0 {
		b.WriteString("implicit-IPC writers (the wake-up call is the read barrier):\n")
		for _, s := range res.ImplicitIPC {
			fmt.Fprintf(&b, "  %s in %s at %s (wake-up %d statements after)\n",
				s.Name, s.Fn.Name, s.Pos, s.WakeUpAfter)
		}
		b.WriteString("\n")
	}
	if len(res.Unpaired) > 0 {
		b.WriteString("unpaired barriers (no partner sharing 2+ ordered objects):\n")
		for _, s := range res.Unpaired {
			fmt.Fprintf(&b, "  %s in %s at %s\n", s.Name, s.Fn.Name, s.Pos)
		}
	}
	return b.String()
}
