package ofence

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"ofence/internal/obs"
)

// TestTraceSpansUnderAnalyzeParallel drives the real pipeline with many
// files and workers under a shared tracer and asserts the span forest it
// records: every stage present, per-file extraction spans parented under
// the extract stage, and counters matching the result. Run under -race by
// make race — this is the concurrent-span-creation coverage for the obs
// layer in its production call shape.
func TestTraceSpansUnderAnalyzeParallel(t *testing.T) {
	const files = 8
	tracer := obs.New()
	ctx := obs.WithTracer(context.Background(), tracer)

	proj := NewProject()
	srcs := make([]SourceFile, files)
	for i := range srcs {
		srcs[i] = SourceFile{
			Name: fmt.Sprintf("f%d.c", i),
			Src:  strings.ReplaceAll(parallelTestSrc, "ps", fmt.Sprintf("ps%d", i)),
		}
	}
	proj.AddSourcesCtx(ctx, srcs)

	opts := DefaultOptions()
	opts.Workers = 4
	res, err := proj.AnalyzeParallel(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairings) != files {
		t.Fatalf("pairings = %d, want %d", len(res.Pairings), files)
	}

	byName := map[string][]*obs.Span{}
	for _, sp := range tracer.Spans() {
		byName[sp.Name()] = append(byName[sp.Name()], sp)
		if _, ended := sp.Elapsed(); !ended {
			t.Errorf("span %q left unfinished", sp.Name())
		}
	}
	for _, stage := range []string{"analyze", "preprocess", "parse", "cfg", "extract", "pair", "check"} {
		if len(byName[stage]) == 0 {
			t.Errorf("stage %q recorded no spans", stage)
		}
	}
	if got := len(byName["extract.file"]); got != files {
		t.Errorf("extract.file spans = %d, want %d", got, files)
	}
	for _, sp := range byName["extract.file"] {
		if sp.Parent() == nil || sp.Parent().Name() != "extract" {
			t.Errorf("extract.file span parented under %v, want extract", sp.Parent())
		}
	}
	if got := len(byName["parse"]); got != files {
		t.Errorf("parse spans = %d, want %d (one per file)", got, files)
	}
	for _, sp := range byName["parse"] {
		kids := sp.Children()
		if len(kids) != 1 || kids[0].Name() != "preprocess" {
			t.Errorf("parse span children = %v, want one preprocess", kids)
		}
	}

	// The analyze root's counters must agree with the result it produced.
	analyze := byName["analyze"][0]
	for _, c := range analyze.Counters() {
		if c.Name == "files" && c.Value != files {
			t.Errorf("analyze files counter = %d, want %d", c.Value, files)
		}
	}
	var extractSites int64
	for _, c := range byName["extract"][0].Counters() {
		if c.Name == "sites" {
			extractSites = c.Value
		}
	}
	if extractSites != int64(len(res.Sites)) {
		t.Errorf("extract sites counter = %d, result has %d", extractSites, len(res.Sites))
	}
}

// TestAnalyzeWithoutTracerUnchanged guards the no-op contract at the
// pipeline level: a bare context and a traced context must produce
// identical results.
func TestAnalyzeWithoutTracerUnchanged(t *testing.T) {
	plain := newParallelTestProject(t)
	resPlain, err := plain.AnalyzeParallel(context.Background(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	ctx := obs.WithTracer(context.Background(), obs.New())
	traced := NewProject()
	traced.AddSourcesCtx(ctx, []SourceFile{{Name: "p.c", Src: parallelTestSrc}})
	resTraced, err := traced.AnalyzeParallel(ctx, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	viewEqual(t, resPlain, resTraced)
}
