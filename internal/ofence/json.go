package ofence

import "ofence/internal/access"

// The View types are stable, JSON-friendly projections of analysis results
// for tooling (the CLI's -json mode, CI integrations).

// SiteView is the serializable form of a barrier site.
type SiteView struct {
	File     string `json:"file"`
	Function string `json:"function"`
	Barrier  string `json:"barrier"`
	Kind     string `json:"kind"`
	Position string `json:"position"`
	Seq      bool   `json:"seqcount,omitempty"`
}

// ObjectView is the serializable form of a shared object.
type ObjectView struct {
	Struct string `json:"struct"`
	Field  string `json:"field"`
}

// PairingView is the serializable form of a pairing.
type PairingView struct {
	Sites  []SiteView   `json:"sites"`
	Common []ObjectView `json:"shared_objects"`
	Weight int          `json:"weight"`
}

// FindingView is the serializable form of a finding.
type FindingView struct {
	Kind        string      `json:"kind"`
	File        string      `json:"file"`
	Function    string      `json:"function"`
	Position    string      `json:"position"`
	Object      *ObjectView `json:"object,omitempty"`
	Suggested   string      `json:"suggested,omitempty"`
	Explanation string      `json:"explanation"`
	// Confidence is the ranking pass's calibrated score (internal/rank).
	Confidence float64 `json:"confidence"`
}

// InferredView is the serializable form of an interprocedurally inferred
// implicit-barrier function.
type InferredView struct {
	Name string `json:"name"`
	File string `json:"file"`
	Kind string `json:"kind"`
	// Known marks functions the built-in catalog (Table 1/2) already lists —
	// inference re-derived them rather than discovering something new.
	Known bool `json:"known,omitempty"`
}

// ResultView is the serializable form of a whole analysis. The interproc
// fields are omitted when empty so default-mode output is unchanged.
type ResultView struct {
	Sites       int            `json:"barrier_sites"`
	Unpaired    int            `json:"unpaired"`
	ImplicitIPC int            `json:"implicit_ipc"`
	Pairings    []PairingView  `json:"pairings"`
	Findings    []FindingView  `json:"findings"`
	ParseErrors []string       `json:"parse_errors,omitempty"`
	Inferred    []InferredView `json:"inferred_semantics,omitempty"`
}

func siteView(s *access.Site) SiteView {
	return SiteView{
		File:     s.File,
		Function: s.Fn.Name,
		Barrier:  s.Name,
		Kind:     s.Kind.String(),
		Position: s.Pos.String(),
		Seq:      s.Seq,
	}
}

func objectView(o access.Object) ObjectView {
	return ObjectView{Struct: o.Struct, Field: o.Field}
}

// View converts the result into its serializable projection.
func (r *Result) View() ResultView {
	v := ResultView{
		Sites:       len(r.Sites),
		Unpaired:    len(r.Unpaired),
		ImplicitIPC: len(r.ImplicitIPC),
	}
	for _, pg := range r.Pairings {
		pv := PairingView{Weight: pg.Weight}
		for _, s := range pg.Sites {
			pv.Sites = append(pv.Sites, siteView(s))
		}
		for _, o := range pg.Common {
			pv.Common = append(pv.Common, objectView(o))
		}
		v.Pairings = append(v.Pairings, pv)
	}
	for _, f := range r.Findings {
		fv := FindingView{
			Kind:        f.Kind.String(),
			File:        f.Site.File,
			Function:    f.Site.Fn.Name,
			Position:    f.Site.Pos.String(),
			Suggested:   f.SuggestedBarrier,
			Explanation: f.Explanation,
			Confidence:  f.Confidence,
		}
		if f.Object != (access.Object{}) {
			ov := objectView(f.Object)
			fv.Object = &ov
		}
		v.Findings = append(v.Findings, fv)
	}
	for _, err := range r.ParseErrors {
		v.ParseErrors = append(v.ParseErrors, err.Error())
	}
	for _, f := range r.Inferred {
		v.Inferred = append(v.Inferred, InferredView{
			Name: f.Name, File: f.File, Kind: f.Kind.String(), Known: f.Known,
		})
	}
	return v
}
