package ofence

import (
	"testing"

	"ofence/internal/access"
	"ofence/internal/memmodel"
)

func analyze(t *testing.T, srcs map[string]string) *Result {
	t.Helper()
	p := NewProject()
	for name, src := range srcs {
		fu := p.AddSource(name, src)
		for _, err := range fu.Errs {
			t.Fatalf("%s: parse error: %v", name, err)
		}
	}
	return p.Analyze(DefaultOptions())
}

func one(t *testing.T, src string) *Result {
	t.Helper()
	return analyze(t, map[string]string{"test.c": src})
}

func findings(res *Result, kind FindingKind) []*Finding {
	var out []*Finding
	for _, f := range res.Findings {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// Listing 1: the textbook correct pattern. Must pair; no deviations.
const listing1 = `
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
	if (!a->init)
		return;
	smp_rmb();
	f(a->y);
}
void writer(struct my_struct *b) {
	b->y = 1;
	smp_wmb();
	b->init = 1;
}`

func TestPairingListing1(t *testing.T) {
	res := one(t, listing1)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1", len(res.Pairings))
	}
	pg := res.Pairings[0]
	if len(pg.Sites) != 2 {
		t.Fatalf("pairing sites = %d", len(pg.Sites))
	}
	if pg.Writer().Fn.Name != "writer" {
		t.Errorf("writer side = %s", pg.Writer().Fn.Name)
	}
	if pg.Readers()[0].Fn.Name != "reader" {
		t.Errorf("reader side = %s", pg.Readers()[0].Fn.Name)
	}
	if len(pg.Common) != 2 {
		t.Errorf("common objects = %v", pg.Common)
	}
	for _, k := range []FindingKind{MisplacedAccess, WrongBarrierType, RepeatedRead, UnneededBarrier} {
		if fs := findings(res, k); len(fs) != 0 {
			t.Errorf("unexpected %v findings: %v", k, fs)
		}
	}
}

func TestPairingAcrossFiles(t *testing.T) {
	res := analyze(t, map[string]string{
		"reader.c": `
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
	if (!a->init)
		return;
	smp_rmb();
	f(a->y);
}`,
		"writer.c": `
struct my_struct { int init; int y; };
void writer(struct my_struct *b) {
	b->y = 1;
	smp_wmb();
	b->init = 1;
}`,
	})
	if len(res.Pairings) != 1 {
		t.Fatalf("cross-file pairings = %d, want 1", len(res.Pairings))
	}
}

func TestNoPairingWithOneSharedObject(t *testing.T) {
	// Only one common object: below the MinSharedObjects=2 threshold.
	res := one(t, `
struct s { int a; };
struct t { int q; int r; };
void w(struct s *p, struct t *u) {
	p->a = 1;
	u->q = 2;
	smp_wmb();
	u->r = 3;
}
void r(struct s *p) {
	if (!p->a)
		return;
	smp_rmb();
	g();
}`)
	if len(res.Pairings) != 0 {
		t.Fatalf("pairings = %v, want none", res.Pairings)
	}
	if len(res.Unpaired) != 2 {
		t.Errorf("unpaired = %d, want 2", len(res.Unpaired))
	}
}

func TestNoPairingWithoutOrdering(t *testing.T) {
	// Both objects on the same side of both barriers: no ordering, no pair.
	res := one(t, `
struct s { int a; int b; };
void w(struct s *p) {
	smp_wmb();
	p->a = 1;
	p->b = 2;
}
void r(struct s *p) {
	smp_rmb();
	use(p->a, p->b);
}`)
	if len(res.Pairings) != 0 {
		t.Fatalf("pairings = %v, want none (no barrier orders the objects)", res.Pairings)
	}
}

func TestGenericStructsFiltered(t *testing.T) {
	// Objects on generic types (list_head) never participate in pairing.
	res := one(t, `
struct list_head { struct list_head *next; struct list_head *prev; };
void w(struct list_head *l) {
	l->next = 0;
	smp_wmb();
	l->prev = 0;
}
void r(struct list_head *l) {
	if (!l->prev)
		return;
	smp_rmb();
	use(l->next);
}`)
	if len(res.Pairings) != 0 {
		t.Fatalf("generic-type pairing not filtered: %v", res.Pairings)
	}
}

// Patch 1: the RPC misplaced memory access.
const rpcSrc = `
struct xbuf { int len; };
struct rpc_rqst {
	struct xbuf rq_private_buf;
	struct xbuf rq_rcv_buf;
	int rq_reply_bytes_recd;
};
void xprt_complete_rqst(struct rpc_rqst *req, int copied) {
	req->rq_private_buf.len = copied;
	smp_wmb();
	req->rq_reply_bytes_recd = copied;
}
void call_decode(struct rpc_rqst *req) {
	smp_rmb();
	if (!req->rq_reply_bytes_recd)
		goto out;
	req->rq_rcv_buf.len = req->rq_private_buf.len;
out:
	return;
}`

func TestPatch1MisplacedAccess(t *testing.T) {
	res := one(t, rpcSrc)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1", len(res.Pairings))
	}
	ms := findings(res, MisplacedAccess)
	if len(ms) != 1 {
		t.Fatalf("misplaced findings = %v", res.Findings)
	}
	f := ms[0]
	if f.Object != (access.Object{Struct: "rpc_rqst", Field: "rq_reply_bytes_recd"}) {
		t.Errorf("object = %v", f.Object)
	}
	if f.Site.Fn.Name != "call_decode" {
		t.Errorf("finding on %s, want call_decode (bias: move the read)", f.Site.Fn.Name)
	}
	if f.Access == nil || f.Access.Kind != access.Load {
		t.Errorf("offending access = %+v", f.Access)
	}
}

func TestPatch1FixedNoFinding(t *testing.T) {
	// The patched code (check before the barrier) must be clean.
	fixed := `
struct xbuf { int len; };
struct rpc_rqst {
	struct xbuf rq_private_buf;
	struct xbuf rq_rcv_buf;
	int rq_reply_bytes_recd;
};
void xprt_complete_rqst(struct rpc_rqst *req, int copied) {
	req->rq_private_buf.len = copied;
	smp_wmb();
	req->rq_reply_bytes_recd = copied;
}
void call_decode(struct rpc_rqst *req) {
	if (!req->rq_reply_bytes_recd)
		goto out;
	smp_rmb();
	req->rq_rcv_buf.len = req->rq_private_buf.len;
out:
	return;
}`
	res := one(t, fixed)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1", len(res.Pairings))
	}
	if ms := findings(res, MisplacedAccess); len(ms) != 0 {
		t.Errorf("fixed code still flagged: %v", ms)
	}
}

// Patch 3: reuseport re-read after the barrier.
const reuseportSrc = `
struct sock { int dummy; };
struct sock_reuseport { struct sock *socks[16]; int num_socks; };
int reuseport_add_sock(struct sock_reuseport *reuse, struct sock *sk) {
	reuse->socks[reuse->num_socks] = sk;
	smp_wmb();
	reuse->num_socks++;
	return 0;
}
struct sock *reuseport_select_sock(struct sock_reuseport *reuse, unsigned hash) {
	int num = reuse->num_socks;
	int i;
	if (!num)
		return 0;
	smp_rmb();
	i = hash % reuse->num_socks;
	return reuse->socks[i];
}`

func TestPatch3RepeatedRead(t *testing.T) {
	res := one(t, reuseportSrc)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1: %v", len(res.Pairings), res.Unpaired)
	}
	rr := findings(res, RepeatedRead)
	if len(rr) == 0 {
		t.Fatalf("no repeated-read finding: %v", res.Findings)
	}
	f := rr[0]
	if f.Object != (access.Object{Struct: "sock_reuseport", Field: "num_socks"}) {
		t.Errorf("object = %v", f.Object)
	}
	if f.Site.Fn.Name != "reuseport_select_sock" {
		t.Errorf("finding on %s", f.Site.Fn.Name)
	}
	if f.FirstAccess == nil || !f.FirstAccess.Before || f.Access == nil || f.Access.Before {
		t.Errorf("first=%+v reread=%+v", f.FirstAccess, f.Access)
	}
}

func TestPatch3FixedNoFinding(t *testing.T) {
	fixed := `
struct sock { int dummy; };
struct sock_reuseport { struct sock *socks[16]; int num_socks; };
int reuseport_add_sock(struct sock_reuseport *reuse, struct sock *sk) {
	reuse->socks[reuse->num_socks] = sk;
	smp_wmb();
	reuse->num_socks++;
	return 0;
}
struct sock *reuseport_select_sock(struct sock_reuseport *reuse, unsigned hash) {
	int num = reuse->num_socks;
	int i;
	if (!num)
		return 0;
	smp_rmb();
	i = hash % num;
	return reuse->socks[i];
}`
	res := one(t, fixed)
	if rr := findings(res, RepeatedRead); len(rr) != 0 {
		t.Errorf("fixed code still flagged: %v", rr)
	}
}

// Patch 2 / Listing 2 shape: a condition reads a field which is then racily
// re-read on the same side of the barrier.
const sameSideReread = `
struct task { int pid; };
struct ectx { struct task *task; int state; };
void perf_apply(struct ectx *ctx) {
	if (!ctx->task)
		return;
	get_task_mm(ctx->task);
	smp_rmb();
	use(ctx->state);
}
void perf_write(struct ectx *ctx) {
	ctx->state = 1;
	smp_wmb();
	ctx->task = 0;
}`

func TestPatch2SameSideReread(t *testing.T) {
	res := one(t, sameSideReread)
	rr := findings(res, RepeatedRead)
	found := false
	for _, f := range rr {
		if f.Object == (access.Object{Struct: "ectx", Field: "task"}) && f.Site.Fn.Name == "perf_apply" {
			found = true
			if f.FirstAccess == nil || f.Access == nil {
				t.Error("re-read finding lacks access pair")
			}
		}
	}
	if !found {
		t.Errorf("same-side re-read not flagged: findings=%v pairings=%v", res.Findings, res.Pairings)
	}
}

func TestPatch2FixedNoFinding(t *testing.T) {
	// Reusing the first value removes the finding.
	fixed := `
struct task { int pid; };
struct ectx { struct task *task; int state; };
void perf_apply(struct ectx *ctx) {
	struct task *t = ctx->task;
	if (!t)
		return;
	get_task_mm(t);
	smp_rmb();
	use(ctx->state);
}
void perf_write(struct ectx *ctx) {
	ctx->state = 1;
	smp_wmb();
	ctx->task = 0;
}`
	res := one(t, fixed)
	for _, f := range findings(res, RepeatedRead) {
		if f.Object == (access.Object{Struct: "ectx", Field: "task"}) {
			t.Errorf("fixed code still flagged: %v", f)
		}
	}
}

// Deviation #2: reader mistakenly uses smp_wmb.
func TestWrongBarrierType(t *testing.T) {
	res := one(t, `
struct s { int flag; int data; };
void w(struct s *p) {
	p->data = 1;
	smp_wmb();
	p->flag = 1;
}
void r(struct s *p) {
	if (!p->flag)
		return;
	smp_wmb();
	use(p->data);
}`)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1", len(res.Pairings))
	}
	wt := findings(res, WrongBarrierType)
	if len(wt) != 1 {
		t.Fatalf("wrong-type findings = %v", res.Findings)
	}
	f := wt[0]
	if f.Site.Fn.Name != "r" || f.SuggestedBarrier != "smp_rmb" {
		t.Errorf("finding = %+v", f)
	}
}

// Patch 4: unneeded barrier before wake_up_process.
func TestPatch4UnneededBarrier(t *testing.T) {
	res := one(t, `
struct task_struct { int pid; };
struct rq_wait_data { int got_token; struct task_struct *task; };
int rq_qos_wake_function(struct rq_wait_data *data) {
	data->got_token = 1;
	smp_wmb();
	wake_up_process(data->task);
	return 1;
}`)
	ub := findings(res, UnneededBarrier)
	if len(ub) != 1 {
		t.Fatalf("unneeded findings = %v (unpaired=%v implicit=%v)", res.Findings, res.Unpaired, res.ImplicitIPC)
	}
	if ub[0].Site.Name != "smp_wmb" {
		t.Errorf("finding = %v", ub[0])
	}
}

func TestUnneededDoubleBarrier(t *testing.T) {
	res := one(t, `
struct s { int a; int b; };
void w(struct s *p) {
	p->a = 1;
	smp_wmb();
	smp_mb();
	p->b = 1;
}`)
	ub := findings(res, UnneededBarrier)
	if len(ub) == 0 {
		t.Fatalf("double barrier not flagged: %v", res.Findings)
	}
}

func TestNeededBarrierNotFlagged(t *testing.T) {
	res := one(t, listing1)
	if ub := findings(res, UnneededBarrier); len(ub) != 0 {
		t.Errorf("needed barrier flagged: %v", ub)
	}
}

// Implicit IPC: a writer whose wake-up is closer than any shared object is
// left unpaired even when a reader-looking function exists.
func TestImplicitIPCUnpairing(t *testing.T) {
	res := one(t, `
struct s { int a; int b; struct task_struct *t; };
void w(struct s *p) {
	p->a = 1;
	p->b = 2;
	smp_wmb();
	wake_up_process(p->t);
}
void r(struct s *p) {
	if (!p->b)
		return;
	smp_rmb();
	use(p->a);
}`)
	if len(res.ImplicitIPC) != 1 {
		t.Fatalf("implicit = %d, want 1 (pairings=%v)", len(res.ImplicitIPC), res.Pairings)
	}
	if len(res.Pairings) != 0 {
		t.Errorf("pairings = %v, want none", res.Pairings)
	}
}

// Figure 5 / Listing 3: the seqcount quad pairing, checked per duo.
const seqcountSrc = `
struct xt_counters { u64 bcnt; u64 pcnt; };
void do_add_counters(struct xt_counters *t, seqcount_t *s) {
	write_seqcount_begin(s);
	t->bcnt += 1;
	t->pcnt += 2;
	write_seqcount_end(s);
}
void get_counters(struct xt_counters *tmp, seqcount_t *s) {
	unsigned v;
	u64 bcnt, pcnt;
	do {
		v = read_seqcount_begin(s);
		bcnt = tmp->bcnt;
		pcnt = tmp->pcnt;
	} while (read_seqcount_retry(s, v));
	use(bcnt, pcnt);
}`

func TestSeqcountQuadPairing(t *testing.T) {
	res := one(t, seqcountSrc)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1 quad (unpaired=%v)", len(res.Pairings), res.Unpaired)
	}
	pg := res.Pairings[0]
	if len(pg.Sites) != 4 {
		t.Fatalf("quad pairing has %d sites: %v", len(pg.Sites), pg)
	}
	// The correct seqcount protocol yields no deviations — the per-duo rule
	// of §5.3 is what prevents false positives here.
	for _, k := range []FindingKind{MisplacedAccess, WrongBarrierType, RepeatedRead} {
		if fs := findings(res, k); len(fs) != 0 {
			t.Errorf("seqcount flagged with %v: %v", k, fs)
		}
	}
}

// The bnx2x false-positive pattern (§6.4): a variable written on both sides
// of the barrier breaks the before/after assumption. We verify the analysis
// still pairs and reports deterministically (documented FP, not a crash).
func TestBnx2xPatternStillPairs(t *testing.T) {
	res := one(t, `
struct bnx2x { unsigned long sp_state; int other; };
void bnx2x_sp_event(struct bnx2x *bp) {
	bp->other = 1;
	bp->sp_state |= 2;
	smp_wmb();
	bp->sp_state &= 1;
}
void bnx2x_reader(struct bnx2x *bp) {
	if (!(bp->sp_state & 2))
		return;
	smp_rmb();
	use(bp->other);
}`)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1", len(res.Pairings))
	}
}

// §7 extension: annotations.
func TestOnceAnnotationFindings(t *testing.T) {
	res := one(t, listing1)
	mo := findings(res, MissingOnce)
	if len(mo) == 0 {
		t.Fatal("no MissingOnce findings on unannotated pairing")
	}
	// All four accesses (2 writer stores, 2 reader loads) lack annotations.
	if len(mo) != 4 {
		t.Errorf("MissingOnce = %d, want 4: %v", len(mo), mo)
	}
	for _, f := range mo {
		if f.SuggestedBarrier != memmodel.ReadOnce && f.SuggestedBarrier != memmodel.WriteOnce {
			t.Errorf("suggestion = %q", f.SuggestedBarrier)
		}
	}
}

func TestOnceAnnotatedNotFlagged(t *testing.T) {
	res := one(t, `
struct my_struct { int init; int y; };
void reader(struct my_struct *a) {
	if (!READ_ONCE(a->init))
		return;
	smp_rmb();
	f(READ_ONCE(a->y));
}
void writer(struct my_struct *b) {
	WRITE_ONCE(b->y, 1);
	smp_wmb();
	WRITE_ONCE(b->init, 1);
}`)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d", len(res.Pairings))
	}
	if mo := findings(res, MissingOnce); len(mo) != 0 {
		t.Errorf("annotated accesses flagged: %v", mo)
	}
}

func TestOnceCheckDisabled(t *testing.T) {
	p := NewProject()
	p.AddSource("t.c", listing1)
	opts := DefaultOptions()
	opts.CheckOnce = false
	res := p.Analyze(opts)
	if mo := findings(res, MissingOnce); len(mo) != 0 {
		t.Errorf("CheckOnce=false still produced findings: %v", mo)
	}
}

// Lowest-weight pairing wins when a reader matches multiple writers.
func TestLowestWeightPairingWins(t *testing.T) {
	res := one(t, `
struct s { int flag; int data; };
void w_far(struct s *p) {
	p->data = 1;
	noise1();
	noise2();
	noise3();
	smp_wmb();
	noise4();
	p->flag = 1;
}
void w_near(struct s *p) {
	p->data = 2;
	smp_wmb();
	p->flag = 2;
}
void r(struct s *p) {
	if (!p->flag)
		return;
	smp_rmb();
	use(p->data);
}`)
	if len(res.Pairings) == 0 {
		t.Fatal("no pairings")
	}
	// r must be paired with w_near (lower distance product).
	var rPairing *Pairing
	for _, pg := range res.Pairings {
		for _, s := range pg.Sites {
			if s.Fn.Name == "r" {
				rPairing = pg
			}
		}
	}
	if rPairing == nil {
		t.Fatal("r not paired")
	}
	// The pairing core (first two sites) must be the low-weight w_near/r
	// match; w_far may only join later through the extension step (§4.2:
	// "when multiple matches are found, we only keep the pairing whose
	// shared objects are closest to the barriers").
	if rPairing.Sites[0].Fn.Name != "w_near" {
		t.Errorf("pairing origin = %s, want w_near", rPairing.Sites[0].Fn.Name)
	}
	if rPairing.Sites[1].Fn.Name != "r" {
		t.Errorf("pairing partner = %s, want r", rPairing.Sites[1].Fn.Name)
	}
}

func TestDeterministicResults(t *testing.T) {
	for i := 0; i < 5; i++ {
		res1 := one(t, rpcSrc+seqcountSrc)
		res2 := one(t, rpcSrc+seqcountSrc)
		if len(res1.Pairings) != len(res2.Pairings) || len(res1.Findings) != len(res2.Findings) {
			t.Fatalf("nondeterministic: %d/%d vs %d/%d",
				len(res1.Pairings), len(res1.Findings), len(res2.Pairings), len(res2.Findings))
		}
		for j := range res1.Findings {
			if res1.Findings[j].String() != res2.Findings[j].String() {
				t.Fatalf("finding %d differs:\n%s\n%s", j, res1.Findings[j], res2.Findings[j])
			}
		}
	}
}

func TestMultipleReadersJoinPairing(t *testing.T) {
	res := one(t, `
struct s { int flag; int data; };
void w(struct s *p) {
	p->data = 1;
	smp_wmb();
	p->flag = 1;
}
void r1(struct s *p) {
	if (!p->flag)
		return;
	smp_rmb();
	use(p->data);
}
void r2(struct s *p) {
	if (!p->flag)
		return;
	smp_rmb();
	use2(p->data);
}`)
	if len(res.Pairings) != 1 {
		t.Fatalf("pairings = %d, want 1 (both readers join)", len(res.Pairings))
	}
	if len(res.Pairings[0].Sites) != 3 {
		t.Errorf("pairing sites = %d, want 3: %v", len(res.Pairings[0].Sites), res.Pairings[0])
	}
}

func TestParseErrorsSurfaced(t *testing.T) {
	p := NewProject()
	p.AddSource("bad.c", "void f( {{{")
	res := p.Analyze(DefaultOptions())
	if len(res.ParseErrors) == 0 {
		t.Error("parse errors not surfaced")
	}
}

func TestFindingString(t *testing.T) {
	res := one(t, rpcSrc)
	for _, f := range res.Findings {
		if f.String() == "" {
			t.Error("empty finding string")
		}
	}
	for _, pg := range res.Pairings {
		if pg.String() == "" {
			t.Error("empty pairing string")
		}
	}
}
