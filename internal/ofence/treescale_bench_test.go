package ofence_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"ofence/internal/obs"
	"ofence/internal/ofence"
	"ofence/internal/sitegen"
)

// benchTreeSpec is the tree the headline benchmark runs over: 2,048 files
// across kernel-ish subsystem directories, with ChainDepth deepening the
// wrapper chains to four links per file. The deep chains (every caller
// ahead of its callee in declaration order) are the adversarial shape for
// the pre-PR global phases: the round-robin semantics fixpoint advances
// inference by one call link per global round, so convergence costs one
// full pass over every function in the tree per chain link — here about
// 8,700 passes — where the SCC-topological schedule evaluates each
// function exactly once regardless of chain depth.
func benchTreeSpec() sitegen.TreeSpec {
	spec := sitegen.DefaultTreeSpec(2048, 42)
	spec.ChainDepth = 4
	spec.CoreChain = 4 * spec.Files
	return spec
}

// treescaleRun builds a cold project over tr and analyzes it, returning the
// wall time of the full run (parse through ranking), the result, and the
// per-phase span durations.
func treescaleRun(t testing.TB, tr *sitegen.Tree, oracle bool, opts ofence.Options) (time.Duration, *ofence.Result, map[string]time.Duration) {
	// Level the GC field: without this, the first (sequential) run pays the
	// heap's growth from a small target while later runs coast under the
	// target the earlier ones left behind.
	runtime.GC()
	tracer := obs.New()
	ctx := obs.WithTracer(context.Background(), tracer)
	start := time.Now()
	p := treeProject(tr, oracle)
	res, err := p.AnalyzeParallel(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	phases := map[string]time.Duration{}
	for _, sp := range tracer.Spans() {
		if sp.Parent() != nil && sp.Parent().Name() == "analyze" {
			if d, ok := sp.Elapsed(); ok {
				phases[sp.Name()] += d
			}
		}
	}
	return wall, res, phases
}

// treescalePeakHeap runs a cold InterprocDepth=0 analysis while sampling
// the live heap, returning the peak HeapAlloc observed (bytes). Depth 0 is
// where ReleaseASTs bounds the cold peak: the pipeline drops each parse
// tree at extraction and skips the front-end stage caches, so live trees
// never exceed the in-flight worker count, where the default path caches
// every file's tokens and AST. (At interprocedural depth the call-graph
// phase needs every tree live at once, and on this barrier-dense corpus
// the site records keep most function bodies reachable afterwards, so
// neither number moves much there.) The sampled runs are not the timed
// runs.
func treescalePeakHeap(t testing.TB, tr *sitegen.Tree, opts ofence.Options) uint64 {
	runtime.GC()
	stop := make(chan struct{})
	peakc := make(chan uint64)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				peakc <- peak
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	p := treeProject(tr, false)
	if _, err := p.AnalyzeParallel(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	close(stop)
	return <-peakc
}

// BenchmarkTreescaleCold compares cold full-run analysis of a generated
// kernel tree with sequential global phases ("seq8", the pre-PR
// implementations behind UseSequentialGlobalForTest) against the sharded/
// SCC-scheduled ones ("scc8"), both at Workers=8. CI smokes this at one
// iteration over a 256-file tree; make bench-treescale records the
// 2,048-file headline in BENCH_treescale.json via TestWriteBenchTreescaleJSON.
func BenchmarkTreescaleCold(b *testing.B) {
	tr := sitegen.GenerateTree(sitegen.DefaultTreeSpec(256, 42))
	opts := ofence.DefaultOptions()
	opts.InterprocDepth = 1
	opts.Workers = 8
	b.Run("seq8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			treescaleRun(b, tr, true, opts)
		}
	})
	b.Run("scc8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			treescaleRun(b, tr, false, opts)
		}
	})
}

// TestWriteBenchTreescaleJSON refreshes BENCH_treescale.json: cold full-run
// analysis of the 2,048-file generated kernel tree, sequential global
// phases versus the sharded/SCC-scheduled ones. Before any number is
// recorded the production path's JSON is asserted byte-identical to the
// sequential oracle at Workers 1 and 8 on the same tree. Gated behind
// OFENCE_BENCH_TREESCALE_OUT so plain `go test` stays fast;
// `make bench-treescale` sets it.
func TestWriteBenchTreescaleJSON(t *testing.T) {
	out := os.Getenv("OFENCE_BENCH_TREESCALE_OUT")
	if out == "" {
		t.Skip("set OFENCE_BENCH_TREESCALE_OUT to refresh BENCH_treescale.json")
	}
	tr := sitegen.GenerateTree(benchTreeSpec())
	opts := ofence.DefaultOptions()
	opts.InterprocDepth = 1

	// Paired interleaved rounds, §11's methodology: noise on a small shared
	// box moves both sides of a back-to-back (sequential, production) pair
	// together while separated runs drift apart, so the per-round ratio is
	// the stable statistic. Three rounds, keep the median-ratio round.
	// Every run's JSON is gated against the first oracle run's bytes.
	oopts := opts
	oopts.Workers = 8
	type round struct {
		seqWall, sccWall     time.Duration
		seqPhases, sccPhases map[string]time.Duration
	}
	var want string
	var treeStats map[string]any
	rounds := make([]round, 3)
	for i := range rounds {
		seqWall, seqRes, seqPhases := treescaleRun(t, tr, true, oopts)
		if i == 0 {
			want = viewJSON(t, seqRes)
			if len(seqRes.Sites) < 2000 || len(seqRes.Pairings) == 0 {
				t.Fatalf("degenerate tree: %d sites, %d pairings", len(seqRes.Sites), len(seqRes.Pairings))
			}
			treeStats = map[string]any{
				"files":     len(tr.Files),
				"headers":   len(tr.Headers),
				"configs":   len(tr.Configs),
				"sites":     len(seqRes.Sites),
				"functions": seqRes.CallGraph.Functions,
				"inferred":  len(seqRes.Inferred),
				"tree_hash": tr.Hash(),
			}
		} else if viewJSON(t, seqRes) != want {
			t.Fatal("sequential oracle is not deterministic across runs; refusing to record benchmark")
		}
		seqRes = nil // release before the paired run so it doesn't GC around the oracle's result
		sccWall, res, sccPhases := treescaleRun(t, tr, false, oopts)
		if viewJSON(t, res) != want {
			t.Fatal("Workers=8 production run diverges from sequential oracle; refusing to record benchmark")
		}
		rounds[i] = round{seqWall, sccWall, seqPhases, sccPhases}
	}
	sort.Slice(rounds, func(i, j int) bool {
		return float64(rounds[i].seqWall)/float64(rounds[i].sccWall) <
			float64(rounds[j].seqWall)/float64(rounds[j].sccWall)
	})
	med := rounds[1]
	seqWall, seqPhases := med.seqWall, med.seqPhases
	sccWall, sccPhases := med.sccWall, med.sccPhases

	// Byte-identity gate at Workers=1 (untimed for the headline, recorded
	// for reference).
	w1opts := opts
	w1opts.Workers = 1
	scc1Wall, res1, _ := treescaleRun(t, tr, false, w1opts)
	if viewJSON(t, res1) != want {
		t.Fatal("Workers=1 production run diverges from sequential oracle; refusing to record benchmark")
	}

	// Peak-memory comparison (untimed cold depth-0 runs): sampled peak live
	// heap with and without ReleaseASTs.
	d0 := ofence.DefaultOptions()
	d0.Workers = 8
	peakKeep := treescalePeakHeap(t, tr, d0)
	r0 := d0
	r0.ReleaseASTs = true
	peakRelease := treescalePeakHeap(t, tr, r0)

	round1 := func(x float64) float64 { return float64(int(x*10+0.5)) / 10 }
	speedup := round1(float64(seqWall) / float64(sccWall))

	phaseNS := func(m map[string]time.Duration) map[string]any {
		out := map[string]any{}
		for name, d := range m {
			out[name+"_ns"] = int64(d)
		}
		return out
	}
	doc := map[string]any{
		"benchmark":   "BenchmarkTreescaleCold",
		"description": "Cold full-run analysis (parse through ranking) of a generated 2,048-file kernel tree (internal/sitegen GenerateTree: 16 subsystem directories, per-directory call chains into an 8,192-link cross-subsystem core chain at ChainDepth=4, message-passing pairs, config-gated #ifdef variance) at InterprocDepth=1, Workers=8. 'seq8' is the pre-PR sequential global-phase implementation (single-threaded callgraph build, round-robin semantics fixpoint that costs one full pass per call link, per-file BFS closure hashing, unsharded dedup and ranking census). 'scc8' is this PR: sharded per-file callgraph build with deterministic merge, SCC-topological fixpoint scheduling that evaluates each non-recursive function exactly once, condensation-memoized closure hashing, sharded dedup and census. JSON output is asserted byte-identical to the sequential oracle at Workers 1 and 8 on the same tree before recording. scc8 is the median of three cold runs. The peak_heap_depth0 entries compare sampled peak live heap of untimed cold InterprocDepth=0 Workers=8 runs with and without ReleaseASTs — depth 0 is where the release bounds the cold peak (live parse trees never exceed the in-flight worker count instead of every file's tokens and AST accumulating in the stage caches); at interprocedural depth the call-graph phase needs every tree at once.",
		"command":     "go test -run '^$' -bench BenchmarkTreescaleCold -benchtime 1x ./internal/ofence/",
		"refresh":     "make bench-treescale",
		"environment": map[string]string{
			"cpu":  benchCPUExt(),
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"results": map[string]any{
			"seq8": map[string]any{
				"wall_ns": int64(seqWall),
				"phases":  phaseNS(seqPhases),
			},
			"scc8": map[string]any{
				"wall_ns": int64(sccWall),
				"phases":  phaseNS(sccPhases),
			},
			"scc1": map[string]any{
				"wall_ns": int64(scc1Wall),
			},
			"peak_heap_depth0": map[string]any{
				"keep_asts_bytes":    peakKeep,
				"release_asts_bytes": peakRelease,
			},
		},
		"tree":              treeStats,
		"speedup_treescale": speedup,
		"acceptance":        "speedup_treescale >= 2.5x cold full-run analysis of a >=2,000-file tree at Workers=8 vs the pre-PR sequential global phases; JSON byte-identical to the sequential oracle at Workers in {1,8}",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("treescale seq8 %v, scc8 %v (%.1fx), scc1 %v; depth-0 peak heap keep=%dMB release=%dMB -> %s",
		seqWall, sccWall, speedup, scc1Wall, peakKeep>>20, peakRelease>>20, out)
	if speedup < 2.5 {
		t.Errorf("acceptance not met: treescale speedup %.1fx (want >= 2.5)", speedup)
	}
}
