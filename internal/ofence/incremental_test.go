package ofence

import (
	"testing"
)

const incWriter = `
struct inc_s { int flag; int data; };
void inc_w(struct inc_s *p) {
	p->data = 1;
	smp_wmb();
	p->flag = 1;
}`

const incReaderBuggy = `
struct inc_s { int flag; int data; };
void inc_r(struct inc_s *p) {
	smp_rmb();
	if (!p->flag)
		return;
	use(p->data);
}`

const incReaderFixed = `
struct inc_s { int flag; int data; };
void inc_r(struct inc_s *p) {
	if (!p->flag)
		return;
	smp_rmb();
	use(p->data);
}`

func TestReplaceSourceIncremental(t *testing.T) {
	p := NewProject()
	p.AddSource("w.c", incWriter)
	p.AddSource("r.c", incReaderBuggy)
	opts := DefaultOptions()

	res1 := p.Analyze(opts)
	if len(res1.Pairings) != 1 {
		t.Fatalf("pairings = %d", len(res1.Pairings))
	}
	found := false
	for _, f := range res1.Findings {
		if f.Kind == MisplacedAccess {
			found = true
		}
	}
	if !found {
		t.Fatal("buggy reader not flagged")
	}

	// Fix only the reader; the writer's extraction must be reused.
	writerUnitBefore := p.Files()[0]
	if fu := p.ReplaceSource("r.c", incReaderFixed); fu == nil {
		t.Fatal("ReplaceSource returned nil")
	}
	res2 := p.Analyze(opts)
	if len(res2.Pairings) != 1 {
		t.Fatalf("pairings after fix = %d", len(res2.Pairings))
	}
	for _, f := range res2.Findings {
		if f.Kind == MisplacedAccess {
			t.Errorf("fixed reader still flagged: %v", f)
		}
	}
	// Same pointer = cache reused (the unit was not re-extracted).
	if p.Files()[0] != writerUnitBefore {
		t.Error("unchanged file was replaced")
	}
	if p.Files()[0].Table == nil {
		t.Error("cached extraction lost")
	}
}

func TestReplaceSourceUnknownFile(t *testing.T) {
	p := NewProject()
	p.AddSource("a.c", incWriter)
	if fu := p.ReplaceSource("nope.c", "int x;"); fu != nil {
		t.Error("replacing unknown file should return nil")
	}
}

func TestOptionsChangeInvalidatesCache(t *testing.T) {
	p := NewProject()
	p.AddSource("w.c", incWriter)
	p.AddSource("r.c", incReaderBuggy)
	opts := DefaultOptions()
	res1 := p.Analyze(opts)
	if len(res1.Pairings) != 1 {
		t.Fatalf("pairings = %d", len(res1.Pairings))
	}
	// Shrinking the write window to zero must recompute extraction and
	// eliminate the pairing.
	opts2 := DefaultOptions()
	opts2.Access.WriteWindow = 0
	res2 := p.Analyze(opts2)
	if len(res2.Pairings) != 0 {
		t.Errorf("stale cache: pairings = %d with zero window", len(res2.Pairings))
	}
	// And going back re-finds it.
	res3 := p.Analyze(DefaultOptions())
	if len(res3.Pairings) != 1 {
		t.Errorf("pairings = %d after options restored", len(res3.Pairings))
	}
}

func TestRepeatedAnalyzeIsStable(t *testing.T) {
	p := NewProject()
	p.AddSource("w.c", incWriter)
	p.AddSource("r.c", incReaderBuggy)
	opts := DefaultOptions()
	res1 := p.Analyze(opts)
	res2 := p.Analyze(opts) // fully cached second run
	if len(res1.Pairings) != len(res2.Pairings) || len(res1.Findings) != len(res2.Findings) {
		t.Errorf("cached run differs: %d/%d vs %d/%d",
			len(res1.Pairings), len(res1.Findings), len(res2.Pairings), len(res2.Findings))
	}
}

func TestTimingPopulated(t *testing.T) {
	p := NewProject()
	p.AddSource("w.c", incWriter)
	p.AddSource("r.c", incReaderBuggy)
	res := p.Analyze(DefaultOptions())
	if res.Timing.Extract <= 0 || res.Timing.Pair <= 0 || res.Timing.Check <= 0 {
		t.Errorf("timing not populated: %+v", res.Timing)
	}
	// Cached re-run: extraction is near-free but still measured.
	res2 := p.Analyze(DefaultOptions())
	if res2.Timing.Extract > res.Timing.Extract*10 {
		t.Errorf("cached extract slower than fresh: %v vs %v", res2.Timing.Extract, res.Timing.Extract)
	}
}
