package ofence_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"ofence/internal/access"
	"ofence/internal/corpus"
	"ofence/internal/ofence"
)

// TestPairingJSONDeterministic is the parallel-pairing determinism suite:
// the -json projection of the fixture corpus must be byte-identical across
// sequential pairing (Workers=1), sharded pairing at several widths, and
// GOMAXPROCS 1/2/8. Sharding only fans out the read-only candidate search;
// every order-sensitive step runs in canonical site order, so any
// divergence here is an engine bug, not schedule noise.
func TestPairingJSONDeterministic(t *testing.T) {
	c := corpus.Generate(corpus.DefaultConfig(29))
	srcs := c.Sources()

	analyze := func(workers int) string {
		p := ofence.NewProject()
		p.AddSources(srcs)
		opts := ofence.DefaultOptions()
		opts.Workers = workers
		return viewJSON(t, p.Analyze(opts))
	}

	want := analyze(1) // sequential pairing: the reference output

	for _, workers := range []int{2, 4, 8} {
		if got := analyze(workers); got != want {
			t.Errorf("workers=%d JSON differs from sequential pairing", workers)
		}
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		// Workers=0 resolves to GOMAXPROCS, so this varies real parallelism.
		if got := analyze(0); got != want {
			t.Errorf("GOMAXPROCS=%d JSON differs from sequential pairing", procs)
		}
	}
}

// TestPairSitesInputOrderInvariant pins the exported pairing entry point:
// PairSites re-sorts its input into canonical order internally, so the
// order sites arrive in never shows in the result.
func TestPairSitesInputOrderInvariant(t *testing.T) {
	c := corpus.Generate(corpus.DefaultConfig(31))
	p := ofence.NewProject()
	p.AddSources(c.Sources())
	res := p.Analyze(ofence.DefaultOptions())
	if len(res.Sites) == 0 {
		t.Fatal("corpus produced no sites")
	}

	render := func(pairings []*ofence.Pairing, unpaired, implicit []*access.Site) string {
		out := ""
		for _, pg := range pairings {
			out += pg.String() + "\n"
		}
		out += "unpaired:"
		for _, s := range unpaired {
			out += " " + s.ID()
		}
		out += "\nimplicit:"
		for _, s := range implicit {
			out += " " + s.ID()
		}
		return out
	}

	pairings, unpaired, implicit, _ := ofence.PairSites(context.Background(), res.Sites, ofence.DefaultOptions())
	want := render(pairings, unpaired, implicit)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		shuffled := make([]*access.Site, len(res.Sites))
		copy(shuffled, res.Sites)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		pg, up, ipc, _ := ofence.PairSites(context.Background(), shuffled, ofence.DefaultOptions())
		if got := render(pg, up, ipc); got != want {
			t.Fatalf("trial %d: shuffled input changed the pairing result:\n%s\nvs\n%s", trial, got, want)
		}
	}
}
