package ofence

import (
	"context"

	"ofence/internal/access"
	"ofence/internal/obs"
	"ofence/internal/rank"
	"ofence/internal/semprop"
)

// rankFindings is analysis phase 4: score every finding with the confidence
// ranker (internal/rank) and, when opts.MinConfidence > 0, drop findings
// below the gate. Scoring always runs — the gate only filters — so JSON and
// SARIF consumers see calibrated confidences even with the gate disabled.
//
// Evidence per finding:
//   - outlier census over ALL deduplicated sites (how the other uses of the
//     finding's object order their accesses);
//   - the pairing's winning weight and probed runner-up (PairStats.Margins,
//     keyed by the pairing's writer);
//   - the finding site's window richness and inlined-provenance flag;
//   - whether the ordering rests on interprocedurally inferred semantics
//     (the site's own barrier name, or — for unneeded-barrier findings —
//     the following call the finding trusts to provide the ordering).
func (p *Project) rankFindings(ctx context.Context, res *Result, opts Options, workers int) {
	_, rsp := obs.Start(ctx, "rank")
	defer rsp.End()
	if len(res.Findings) == 0 {
		return
	}
	var idx *rank.Index
	if p.seqGlobal {
		idx = rank.BuildIndex(res.Sites)
	} else {
		// Sharded census: byte-identical Index at any worker count.
		idx = rank.BuildIndexParallel(res.Sites, workers)
	}
	inferredOnly := semprop.InferredOnly(res.Inferred)
	for _, f := range res.Findings {
		f.Confidence = rank.Combine(evidenceFor(f, idx, res.PairStats.Margins, inferredOnly))
	}
	rsp.Add("ranked", int64(len(res.Findings)))
	if opts.MinConfidence > 0 {
		kept := make([]*Finding, 0, len(res.Findings))
		for _, f := range res.Findings {
			if f.Confidence >= opts.MinConfidence {
				kept = append(kept, f)
			}
		}
		rsp.Add("gated_out", int64(len(res.Findings)-len(kept)))
		res.Findings = kept
	}
}

// evidenceFor assembles the four-channel evidence for one finding.
func evidenceFor(f *Finding, idx *rank.Index, margins map[string]PairMargin, inferredOnly map[string]bool) rank.Evidence {
	ev := rank.Evidence{
		Richness: f.Site.Richness(),
		Inlined:  f.Site.Unit != nil && f.Site.Unit.InlinedFrom != "",
	}
	if f.Object != (access.Object{}) {
		ev.Outlier = idx.Support(f.Object, f.Site)
	}
	if f.Pairing != nil {
		ev.HasPairing = true
		ev.Weight = f.Pairing.Weight
		ev.RunnerUp = -1
		if m, ok := margins[f.Pairing.Writer().ID()]; ok {
			ev.RunnerUp = m.RunnerUp
		}
	}
	ev.InferredSem = inferredOnly[f.Site.Name] ||
		(f.Kind == UnneededBarrier && inferredOnly[f.Site.NextBarrierName])
	return ev
}
