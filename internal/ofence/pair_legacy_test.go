package ofence

import (
	"sort"

	"ofence/internal/access"
)

// This file preserves the pre-index pairing engine — the direct
// transliteration of Algorithm 1 with map[access.Object]int object sets and
// per-getPair-call set allocation — as a test-only oracle. The determinism
// suite runs it differentially against the interned/indexed engine in
// pair.go, and BenchmarkPairKernelScale uses it as the old-vs-new baseline.
// It is not compiled into the analyzer.

type legacyPairer struct {
	sites    []*access.Site
	opts     Options
	objIndex map[access.Object][]*access.Site
	objDist  map[*access.Site]map[access.Object]int
	ids      map[*access.Site]string
	generic  map[string]bool
	pruned   int
}

type legacyCandidate struct {
	other  *access.Site
	weight int
	o1, o2 access.Object
}

func newLegacyPairer(sites []*access.Site, opts Options) *legacyPairer {
	if opts.MinSharedObjects <= 0 {
		opts.MinSharedObjects = 2
	}
	pr := &legacyPairer{
		sites:    sites,
		opts:     opts,
		objIndex: map[access.Object][]*access.Site{},
		objDist:  map[*access.Site]map[access.Object]int{},
		ids:      map[*access.Site]string{},
		generic:  map[string]bool{},
	}
	for _, g := range opts.GenericStructs {
		pr.generic[g] = true
	}
	for _, s := range sites {
		objs := pr.filteredObjects(s)
		pr.objDist[s] = objs
		pr.ids[s] = s.ID()
		for o := range objs {
			pr.objIndex[o] = append(pr.objIndex[o], s)
		}
	}
	return pr
}

func (pr *legacyPairer) filteredObjects(s *access.Site) map[access.Object]int {
	all := s.Objects()
	drop := false
	for o := range all {
		if pr.generic[o.Struct] {
			drop = true
			break
		}
	}
	if !drop {
		return all
	}
	out := make(map[access.Object]int, len(all))
	for o, d := range all {
		if pr.generic[o.Struct] {
			continue
		}
		out[o] = d
	}
	return out
}

func (pr *legacyPairer) run() (pairings []*Pairing, unpaired, implicit []*access.Site) {
	tentative := map[*access.Site][]legacyCandidate{}

	for _, b := range pr.sites {
		if !isWriteSide(b) {
			continue
		}
		objs := pr.objDist[b]
		best := legacyCandidate{weight: -1}
		olist := legacySortedObjects(objs)
		for i := 0; i < len(olist); i++ {
			for j := i + 1; j < len(olist); j++ {
				o1, o2 := olist[i], olist[j]
				myWeight := weightOf(objs[o1]) * weightOf(objs[o2])
				pair, pairWeight := pr.getPair(b, o1, o2)
				if pair == nil {
					continue
				}
				w := myWeight * pairWeight
				if (best.weight < 0 || w < best.weight) &&
					(b.Orders(o1, o2) || pair.Orders(o1, o2)) {
					best = legacyCandidate{other: pair, weight: w, o1: o1, o2: o2}
				}
			}
		}
		if pr.opts.MinSharedObjects == 1 && best.other == nil {
			for _, o := range olist {
				pair, pairWeight := pr.getSingle(b, o)
				if pair == nil {
					continue
				}
				w := weightOf(objs[o]) * pairWeight
				if best.weight < 0 || w < best.weight {
					best = legacyCandidate{other: pair, weight: w, o1: o, o2: o}
				}
			}
		}
		if best.other != nil {
			if b.WakeUpAfter >= 0 && b.WakeUpAfter <= legacyMinObjDistance(b, best.o1, best.o2) {
				implicit = append(implicit, b)
				continue
			}
			tentative[b] = append(tentative[b], best)
			tentative[best.other] = append(tentative[best.other], legacyCandidate{other: b, weight: best.weight, o1: best.o1, o2: best.o2})
		} else if b.WakeUpAfter >= 0 {
			implicit = append(implicit, b)
		}
	}

	bestOf := map[*access.Site]legacyCandidate{}
	for s, cands := range tentative {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.weight < best.weight {
				best = c
			}
		}
		bestOf[s] = best
	}

	tentativeTotal := 0
	for _, cands := range tentative {
		tentativeTotal += len(cands)
	}
	kept := 0
	paired := map[*access.Site]bool{}
	for _, b := range pr.sites {
		if !isWriteSide(b) || paired[b] {
			continue
		}
		c, ok := bestOf[b]
		if !ok {
			continue
		}
		back, ok := bestOf[c.other]
		if !ok || back.other != b {
			continue
		}
		kept += 2
		pairing := &Pairing{Sites: []*access.Site{b, c.other}, Weight: c.weight}
		pairing.Common = legacyCommonObjects(pr.objDist[b], pr.objDist[c.other])
		paired[b] = true
		paired[c.other] = true
		pairings = append(pairings, pairing)
	}

	for _, pg := range pairings {
		for _, s := range pr.sites {
			if paired[s] || len(pg.Common) < pr.opts.MinSharedObjects {
				continue
			}
			if legacyContainsAll(pr.objDist[s], pg.Common) {
				pg.Sites = append(pg.Sites, s)
				paired[s] = true
			}
		}
	}

	pr.pruned = tentativeTotal - kept
	pairings = mergeByCommon(pairings)

	for _, s := range pr.sites {
		if !paired[s] && !isImplicitMember(s, implicit) {
			unpaired = append(unpaired, s)
		}
	}
	return pairings, unpaired, implicit
}

func (pr *legacyPairer) getPair(b *access.Site, o1, o2 access.Object) (*access.Site, int) {
	s1 := pr.objIndex[o1]
	s2 := pr.objIndex[o2]
	in2 := map[*access.Site]bool{}
	for _, s := range s2 {
		in2[s] = true
	}
	var match *access.Site
	bestW := -1
	for _, s := range s1 {
		if s == b || !in2[s] {
			continue
		}
		if pr.ids[s] == pr.ids[b] {
			continue
		}
		w := weightOf(pr.objDist[s][o1]) * weightOf(pr.objDist[s][o2])
		if bestW < 0 || w < bestW {
			bestW = w
			match = s
		}
	}
	return match, bestW
}

func (pr *legacyPairer) getSingle(b *access.Site, o access.Object) (*access.Site, int) {
	var match *access.Site
	bestW := -1
	for _, s := range pr.objIndex[o] {
		if s == b || pr.ids[s] == pr.ids[b] {
			continue
		}
		w := weightOf(pr.objDist[s][o])
		if bestW < 0 || w < bestW {
			bestW = w
			match = s
		}
	}
	return match, bestW
}

func legacyMinObjDistance(s *access.Site, objs ...access.Object) int {
	min := -1
	dist := s.Objects()
	for _, o := range objs {
		if d, ok := dist[o]; ok && (min < 0 || d < min) {
			min = d
		}
	}
	if min < 0 {
		return 1 << 30
	}
	return min
}

func legacySortedObjects(m map[access.Object]int) []access.Object {
	out := make([]access.Object, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Struct != out[j].Struct {
			return out[i].Struct < out[j].Struct
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func legacyCommonObjects(a, b map[access.Object]int) []access.Object {
	var out []access.Object
	for o := range a {
		if _, ok := b[o]; ok {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Struct != out[j].Struct {
			return out[i].Struct < out[j].Struct
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func legacyContainsAll(objs map[access.Object]int, want []access.Object) bool {
	if len(want) == 0 {
		return false
	}
	for _, o := range want {
		if _, ok := objs[o]; !ok {
			return false
		}
	}
	return true
}
