package ofence

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ofence/internal/access"
	"ofence/internal/cfg"
	"ofence/internal/memmodel"
)

// FindingKind classifies a deviation (§5) or extension finding (§7).
type FindingKind int

const (
	// MisplacedAccess is deviation #1: a shared object read and written on
	// the same side of both barriers of a pairing.
	MisplacedAccess FindingKind = iota
	// WrongBarrierType is deviation #2: a read barrier that only orders
	// writes, or a write barrier that only orders reads.
	WrongBarrierType
	// RepeatedRead is deviation #3: a variable correctly read relative to a
	// read barrier and then racily re-read.
	RepeatedRead
	// UnneededBarrier is §5.1: a barrier immediately followed by another
	// barrier or by a function with barrier semantics.
	UnneededBarrier
	// MissingOnce is the §7 extension: a concurrently-accessed shared
	// object lacking READ_ONCE/WRITE_ONCE.
	MissingOnce
)

// String renders the kind using the paper's vocabulary.
func (k FindingKind) String() string {
	switch k {
	case MisplacedAccess:
		return "misplaced memory access"
	case WrongBarrierType:
		return "wrong type of barrier"
	case RepeatedRead:
		return "racy variable re-read"
	case UnneededBarrier:
		return "unneeded barrier"
	case MissingOnce:
		return "missing READ_ONCE/WRITE_ONCE"
	}
	return "unknown"
}

// Finding is one reported deviation with everything the patch generator
// needs.
type Finding struct {
	Kind    FindingKind
	Site    *access.Site
	Pairing *Pairing // nil for unneeded barriers
	Object  access.Object
	// Access is the offending access (the one a patch moves, de-duplicates
	// or annotates); nil for wrong-type and unneeded-barrier findings.
	Access *access.Access
	// FirstAccess is the earlier, correct access for repeated reads.
	FirstAccess *access.Access
	// SuggestedBarrier is the replacement primitive for wrong-type
	// findings ("smp_wmb" or "smp_rmb").
	SuggestedBarrier string
	// Explanation is the human-readable rationale embedded in patches.
	Explanation string
	// Confidence is the calibrated score in [0, 1] the ranking pass
	// (internal/rank) assigns after checking; findings below
	// Options.MinConfidence are gated out of Result.Findings.
	Confidence float64
}

// String renders the finding.
func (f *Finding) String() string {
	loc := f.Site.Pos.String()
	return fmt.Sprintf("%s: %s in %s: %s", loc, f.Kind, f.Site.Fn.Name, f.Explanation)
}

type checker struct {
	opts Options
}

// checkParallel runs the deviation checkers with per-pairing fan-out across
// a pool of workers goroutines. Findings are collected per pairing index and
// merged in order (then sorted by position), so the output is deterministic
// regardless of scheduling. It stops early and returns ctx's error when the
// context is canceled.
func (c *checker) checkParallel(ctx context.Context, res *Result, workers int) ([]*Finding, error) {
	if workers <= 0 {
		workers = 1
	}
	perPairing := make([][]*Finding, len(res.Pairings))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pg := range res.Pairings {
		wg.Add(1)
		go func(i int, pg *Pairing) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			perPairing[i] = c.checkPairing(pg)
		}(i, pg)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var out []*Finding
	for _, fs := range perPairing {
		out = append(out, fs...)
	}
	for _, s := range res.Unpaired {
		if f := c.checkUnneeded(s, nil); f != nil {
			out = append(out, f)
		}
	}
	for _, s := range res.ImplicitIPC {
		if f := c.checkUnneeded(s, nil); f != nil {
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Site.File != b.Site.File {
			return a.Site.File < b.Site.File
		}
		if a.Site.Pos.Line != b.Site.Pos.Line {
			return a.Site.Pos.Line < b.Site.Pos.Line
		}
		return a.Kind < b.Kind
	})
	return out, nil
}

// checkPairing dispatches on pairing arity (§5.2 vs §5.3).
func (c *checker) checkPairing(pg *Pairing) []*Finding {
	writeSites, readSites := splitRoles(pg)
	var out []*Finding
	if len(pg.Sites) > 2 && len(writeSites) >= 2 && len(readSites) >= 2 {
		// §5.3 double pairing (seqcount): barriers work in duos — the first
		// write barrier pairs with the SECOND read barrier and vice versa.
		w1, w2 := orderTwo(writeSites[0], writeSites[1])
		r1, r2 := orderTwo(readSites[0], readSites[1])
		out = append(out, c.checkDuo(pg, w1, r2)...)
		out = append(out, c.checkDuo(pg, w2, r1)...)
	} else {
		for _, w := range writeSites {
			for _, r := range readSites {
				out = append(out, c.checkDuo(pg, w, r)...)
			}
		}
	}
	for _, s := range pg.Sites {
		if f := c.checkWrongType(pg, s); f != nil {
			out = append(out, f)
		}
	}
	if c.opts.CheckOnce {
		out = append(out, c.checkOnce(pg)...)
	}
	return out
}

// splitRoles divides the pairing's sites into write-side and read-side.
// Full barriers count on the side their surrounding accesses suggest.
func splitRoles(pg *Pairing) (writes, reads []*access.Site) {
	for _, s := range pg.Sites {
		switch s.Kind {
		case memmodel.WriteBarrier:
			writes = append(writes, s)
		case memmodel.ReadBarrier:
			reads = append(reads, s)
		default: // full barrier: classify by dominant access kind on common objects
			st, ld := 0, 0
			for _, a := range append(append([]*access.Access{}, s.Before...), s.After...) {
				if !inCommon(pg, a.Object) {
					continue
				}
				if a.Kind == access.Store {
					st++
				} else {
					ld++
				}
			}
			if st >= ld {
				writes = append(writes, s)
			} else {
				reads = append(reads, s)
			}
		}
	}
	return writes, reads
}

func inCommon(pg *Pairing, o access.Object) bool {
	for _, c := range pg.Common {
		if c == o {
			return true
		}
	}
	return false
}

// orderTwo returns the two sites in source order.
func orderTwo(a, b *access.Site) (*access.Site, *access.Site) {
	if a.Fn == b.Fn && a.Unit != nil && b.Unit != nil {
		if a.Unit.Index <= b.Unit.Index {
			return a, b
		}
		return b, a
	}
	if a.Pos.Line <= b.Pos.Line {
		return a, b
	}
	return b, a
}

// checkDuo runs deviations #1 and #3 on one write/read barrier duo.
//
// Correct placement (§2): objects written BEFORE the write barrier must be
// read AFTER the read barrier; objects written AFTER the write barrier must
// be read BEFORE the read barrier. Any same-side read+write is deviation #1.
func (c *checker) checkDuo(pg *Pairing, w, r *access.Site) []*Finding {
	var out []*Finding
	for _, o := range pg.Common {
		wb := hasAccess(w.Before, o, access.Store)
		wa := hasAccess(w.After, o, access.Store)
		rb := firstAccess(r.Before, o, access.Load)
		ra := firstAccess(r.After, o, access.Load)

		// Deviation #1: same-side placement. The patch bias (§5.2) always
		// moves the READ, trusting the writer.
		if wb != nil && rb != nil && ra == nil {
			// Written before W (payload side) but only read before R.
			out = append(out, &Finding{
				Kind: MisplacedAccess, Site: r, Pairing: pg, Object: o, Access: rb,
				Explanation: fmt.Sprintf("%s is written before the write barrier in %s but read before the read barrier in %s; the read must move after the barrier",
					o, w.Fn.Name, r.Fn.Name),
			})
		}
		if wa != nil && ra != nil && rb == nil {
			// Written after W (flag side) but only read after R.
			out = append(out, &Finding{
				Kind: MisplacedAccess, Site: r, Pairing: pg, Object: o, Access: ra,
				Explanation: fmt.Sprintf("%s is written after the write barrier in %s but read after the read barrier in %s; the read must move before the barrier",
					o, w.Fn.Name, r.Fn.Name),
			})
		}

		// Deviation #3, cross-side form (Patch 3): flag object correctly
		// read before the read barrier, then racily re-read after it.
		if wa != nil && rb != nil && ra != nil {
			out = append(out, &Finding{
				Kind: RepeatedRead, Site: r, Pairing: pg, Object: o,
				FirstAccess: rb, Access: ra,
				Explanation: fmt.Sprintf("%s is correctly read before the read barrier in %s but re-read after it; the re-read has no ordering guarantee — reuse the first value",
					o, r.Fn.Name),
			})
		}

		// Deviation #3, same-side form (Patch 2 / Listing 2): a condition
		// reads the object, then the object is re-read before the barrier.
		if f := c.repeatedReadSameSide(pg, r, o); f != nil {
			out = append(out, f)
		}
	}
	return out
}

// repeatedReadSameSide flags an object loaded at two or more distinct units
// before the read barrier where the first (farthest) load feeds a branch
// condition.
func (c *checker) repeatedReadSameSide(pg *Pairing, r *access.Site, o access.Object) *Finding {
	var loads []*access.Access
	for _, a := range r.Before {
		if a.Object == o && a.Kind == access.Load {
			loads = append(loads, a)
		}
	}
	if len(loads) < 2 {
		return nil
	}
	// Distinct units only — "a->f + a->f" in one expression is not a race
	// the paper reports.
	units := map[*cfg.Unit]bool{}
	for _, a := range loads {
		units[a.Unit] = true
	}
	if len(units) < 2 {
		return nil
	}
	// The farthest load (first in code order) must be a condition read.
	first := loads[len(loads)-1] // Before is sorted by distance: last = farthest
	if first.Unit == nil || first.Unit.Kind != cfg.UnitCond {
		return nil
	}
	reread := loads[0] // closest to the barrier = latest in code order
	if reread.Unit == first.Unit {
		return nil
	}
	return &Finding{
		Kind: RepeatedRead, Site: r, Pairing: pg, Object: o,
		FirstAccess: first, Access: reread,
		Explanation: fmt.Sprintf("%s is checked in a condition and then re-read in %s; a concurrent write may change it between the reads — reuse the first value",
			o, r.Fn.Name),
	}
}

func hasAccess(list []*access.Access, o access.Object, k access.Kind) *access.Access {
	for _, a := range list {
		if a.Object == o && a.Kind == k {
			return a
		}
	}
	return nil
}

func firstAccess(list []*access.Access, o access.Object, k access.Kind) *access.Access {
	return hasAccess(list, o, k) // list is distance-sorted; first match is closest
}

// checkWrongType is deviation #2: the barrier's kind does not match the
// accesses it orders. Only explicit read/write primitives are checked; full
// barriers order both and seqcount barriers have fixed APIs.
func (c *checker) checkWrongType(pg *Pairing, s *access.Site) *Finding {
	if s.Seq || (s.Kind != memmodel.ReadBarrier && s.Kind != memmodel.WriteBarrier) {
		return nil
	}
	var loads, stores int
	for _, a := range append(append([]*access.Access{}, s.Before...), s.After...) {
		if !inCommon(pg, a.Object) {
			continue
		}
		if a.Kind == access.Store {
			stores++
		} else {
			loads++
		}
	}
	if loads+stores == 0 {
		return nil
	}
	if s.Kind == memmodel.ReadBarrier && loads == 0 && stores > 0 {
		return &Finding{
			Kind: WrongBarrierType, Site: s, Pairing: pg,
			SuggestedBarrier: "smp_wmb",
			Explanation: fmt.Sprintf("the read barrier in %s only orders writes to the shared objects; it must be a write barrier (smp_wmb)",
				s.Fn.Name),
		}
	}
	if s.Kind == memmodel.WriteBarrier && stores == 0 && loads > 0 {
		return &Finding{
			Kind: WrongBarrierType, Site: s, Pairing: pg,
			SuggestedBarrier: "smp_rmb",
			Explanation: fmt.Sprintf("the write barrier in %s only orders reads of the shared objects; it must be a read barrier (smp_rmb)",
				s.Fn.Name),
		}
	}
	return nil
}

// checkUnneeded is §5.1: an unpaired barrier immediately followed by another
// barrier or by a function with barrier semantics offers nothing.
func (c *checker) checkUnneeded(s *access.Site, pg *Pairing) *Finding {
	if s.Seq {
		return nil // seqcount barriers are part of a fixed protocol
	}
	if s.NextBarrierAfter != 1 {
		return nil
	}
	return &Finding{
		Kind: UnneededBarrier, Site: s, Pairing: pg,
		Explanation: fmt.Sprintf("the %s in %s is immediately followed by %s, which already provides barrier semantics; the barrier is unneeded",
			s.Name, s.Fn.Name, s.NextBarrierName),
	}
}

// checkOnce is the §7 extension: on a correctly-ordered pairing, shared
// objects accessed without READ_ONCE/WRITE_ONCE need annotations.
func (c *checker) checkOnce(pg *Pairing) []*Finding {
	var out []*Finding
	for _, s := range pg.Sites {
		for _, list := range [2][]*access.Access{s.Before, s.After} {
			for _, a := range list {
				out = c.checkOnceAccess(pg, s, a, out)
			}
		}
	}
	return out
}

// checkOnceAccess appends a MissingOnce finding for one access when it
// touches a shared object without the required annotation.
func (c *checker) checkOnceAccess(pg *Pairing, s *access.Site, a *access.Access, out []*Finding) []*Finding {
	if !inCommon(pg, a.Object) || a.Once || a.Expr == nil {
		return out
	}
	if a.Distance == 0 {
		return out // combined primitives already have ONCE semantics
	}
	ann := memmodel.ReadOnce
	if a.Kind == access.Store {
		ann = memmodel.WriteOnce
	}
	return append(out, &Finding{
		Kind: MissingOnce, Site: s, Pairing: pg, Object: a.Object, Access: a,
		SuggestedBarrier: ann,
		Explanation: fmt.Sprintf("%s is accessed concurrently in %s without %s; the compiler may tear or fuse the access",
			a.Object, s.Fn.Name, ann),
	})
}
