package ofence_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"ofence/internal/corpus"
	"ofence/internal/cparser"
	"ofence/internal/cpp"
	"ofence/internal/ctoken"
	"ofence/internal/ofence"
)

// benchFrontendSources builds the paper-scale default corpus (~300 files,
// ~1800 generated patterns) the frontend benchmark runs over.
func benchFrontendSources() []ofence.SourceFile {
	return corpus.Generate(corpus.DefaultConfig(42)).Sources()
}

// frontendLegacy runs the pre-overhaul frontend over the corpus: rune-based
// map-dispatch lexer, per-node heap-allocating parser, no interning, and the
// separate fingerprint pass the analysis always needs for its cache keys.
func frontendLegacy(srcs []ofence.SourceFile) int {
	nodes := 0
	for _, sf := range srcs {
		pre := cpp.Preprocess(sf.Name, sf.Src, cpp.Options{LegacyLexer: true})
		pre.Fingerprint(sf.Name)
		f := cparser.NewLegacy(pre.Tokens).ParseFile(sf.Name)
		nodes += len(f.Decls)
	}
	return nodes
}

// frontendNew runs the overhauled frontend: zero-copy byte scanner with
// identifiers interned into a shared SymTab, arena-batched AST allocation,
// and the fingerprint streamed during preprocessing (Fingerprint is a cached
// read).
func frontendNew(srcs []ofence.SourceFile) int {
	syms := ctoken.NewSymTab()
	nodes := 0
	for _, sf := range srcs {
		pre := cpp.Preprocess(sf.Name, sf.Src, cpp.Options{Syms: syms})
		pre.Fingerprint(sf.Name)
		f := cparser.New(pre.Tokens).ParseFile(sf.Name)
		nodes += len(f.Decls)
	}
	return nodes
}

// BenchmarkFrontendCold measures the cold preprocess+parse path old-vs-new
// over the default corpus. "legacy" is the pre-PR frontend (rune lexer,
// heap-allocated AST); "interned" is the zero-copy scanner + SymTab + arena
// frontend, single-threaded, isolating the data-layer win; "pipelined8" is
// the whole-project cold analysis with the fused per-file schedule at
// Workers=8/GOMAXPROCS=8, versus "classic8" (the same analysis forced
// through the legacy frontend). make bench-frontend runs these via
// TestWriteBenchFrontendJSON and records BENCH_frontend.json.
func BenchmarkFrontendCold(b *testing.B) {
	srcs := benchFrontendSources()
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frontendLegacy(srcs)
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frontendNew(srcs)
		}
	})
	b.Run("classic8", func(b *testing.B) {
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		o := ofence.DefaultOptions()
		o.Workers = 8
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := ofence.NewProject()
			p.UseLegacyFrontendForTest()
			p.AddSources(srcs)
			p.Analyze(o)
		}
	})
	b.Run("pipelined8", func(b *testing.B) {
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		o := ofence.DefaultOptions()
		o.Workers = 8
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := ofence.NewProject()
			if _, err := p.AnalyzeSourcesCtx(context.Background(), srcs, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestWriteBenchFrontendJSON refreshes BENCH_frontend.json: it runs the
// BenchmarkFrontendCold variants via testing.Benchmark and writes their
// results in the BENCH_*.json schema (docs_test.go lints the shape). Gated
// behind OFENCE_BENCH_FRONTEND_OUT so plain `go test` stays fast;
// `make bench-frontend` sets it.
func TestWriteBenchFrontendJSON(t *testing.T) {
	out := os.Getenv("OFENCE_BENCH_FRONTEND_OUT")
	if out == "" {
		t.Skip("set OFENCE_BENCH_FRONTEND_OUT to refresh BENCH_frontend.json")
	}
	srcs := benchFrontendSources()

	// Sanity-gate the numbers: the new frontend must analyze identically to
	// the legacy oracle before any result is recorded.
	oracle := ofence.NewProject()
	oracle.UseLegacyFrontendForTest()
	oracle.AddSources(srcs)
	want := viewJSON(t, oracle.Analyze(ofence.DefaultOptions()))
	probe := ofence.NewProject()
	res, err := probe.AnalyzeSourcesCtx(context.Background(), srcs, ofence.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if viewJSON(t, res) != want {
		t.Fatal("new frontend diverges from the legacy oracle; refusing to record benchmark")
	}

	// Measure legacy/interned as three interleaved rounds and keep the round
	// with the median speedup: scheduling noise on a small machine moves both
	// sides of a round together, so the paired ratio is far more stable than
	// either measurement alone.
	type round struct {
		legacy, interned testing.BenchmarkResult
		ratio            float64
	}
	rounds := make([]round, 3)
	for i := range rounds {
		l := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				frontendLegacy(srcs)
			}
		})
		n := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				frontendNew(srcs)
			}
		})
		rounds[i] = round{l, n, float64(l.NsPerOp()) / float64(n.NsPerOp())}
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i].ratio < rounds[j].ratio })
	legacy, interned := rounds[1].legacy, rounds[1].interned
	o := ofence.DefaultOptions()
	o.Workers = 8
	classic := testing.Benchmark(func(b *testing.B) {
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		for i := 0; i < b.N; i++ {
			p := ofence.NewProject()
			p.UseLegacyFrontendForTest()
			p.AddSources(srcs)
			p.Analyze(o)
		}
	})
	pipelined := testing.Benchmark(func(b *testing.B) {
		old := runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(old)
		for i := 0; i < b.N; i++ {
			p := ofence.NewProject()
			if _, err := p.AnalyzeSourcesCtx(context.Background(), srcs, o); err != nil {
				b.Fatal(err)
			}
		}
	})

	round1 := func(x float64) float64 { return float64(int(x*10+0.5)) / 10 }
	speedupFrontend := round1(float64(legacy.NsPerOp()) / float64(interned.NsPerOp()))
	speedupAnalyze := round1(float64(classic.NsPerOp()) / float64(pipelined.NsPerOp()))

	entry := func(r testing.BenchmarkResult) map[string]any {
		return map[string]any{
			"ns_per_op":     r.NsPerOp(),
			"bytes_per_op":  r.AllocedBytesPerOp(),
			"allocs_per_op": r.AllocsPerOp(),
		}
	}
	doc := map[string]any{
		"benchmark":   "BenchmarkFrontendCold",
		"description": "Cold frontend over the paper-scale default corpus (~300 files, internal/corpus). 'legacy' is the pre-PR frontend: rune-based map-dispatch lexer and a parser that heap-allocates every AST node. 'interned' is the overhauled frontend: zero-copy byte scanner, identifiers interned into a shared SymTab, slab-arena AST allocation — single-threaded, isolating the data-layer win. 'classic8' and 'pipelined8' compare whole-project cold analysis (Workers=8, GOMAXPROCS=8) on the legacy frontend + barrier schedule versus the new frontend + fused per-file preprocess->parse->extract pipeline. Analysis output is asserted byte-identical to the legacy oracle before recording. legacy/interned are measured as three interleaved rounds with the median-speedup round recorded, so scheduling noise that moves both sides of a round together cancels in the ratio.",
		"command":     "go test -run '^$' -bench BenchmarkFrontendCold -benchtime 3s ./internal/ofence/",
		"refresh":     "make bench-frontend",
		"environment": map[string]string{
			"cpu":  benchCPUExt(),
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().Format("2006-01-02"),
		},
		"results": map[string]any{
			"legacy":     entry(legacy),
			"interned":   entry(interned),
			"classic8":   entry(classic),
			"pipelined8": entry(pipelined),
		},
		"speedup_frontend":      speedupFrontend,
		"speedup_cold_analyze8": speedupAnalyze,
		"acceptance":            "speedup_frontend >= 3x cold preprocess+parse over the pre-PR frontend, single-threaded; analysis output byte-identical to the legacy oracle",
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("frontend legacy %v, interned %v (%.1fx); cold analyze classic8 %v, pipelined8 %v (%.1fx) -> %s",
		legacy.NsPerOp(), interned.NsPerOp(), speedupFrontend, classic.NsPerOp(), pipelined.NsPerOp(), speedupAnalyze, out)
	if speedupFrontend < 3 {
		t.Errorf("acceptance not met: frontend speedup %.1fx (want >= 3)", speedupFrontend)
	}
}

// benchCPUExt returns the host CPU model for the environment block.
func benchCPUExt() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}
