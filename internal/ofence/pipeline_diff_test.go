package ofence_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"ofence/internal/corpus"
	"ofence/internal/ofence"
)

// pipelineDiffSources builds a deterministic multi-pattern corpus exercising
// every site shape the analysis knows.
func pipelineDiffSources() []ofence.SourceFile {
	cfg := corpus.DefaultConfig(1234)
	cfg.Counts = map[corpus.PatternKind]int{
		corpus.InitFlag:     8,
		corpus.Seqcount:     3,
		corpus.ImplicitIPC:  3,
		corpus.Unneeded:     2,
		corpus.Misplaced:    3,
		corpus.RepeatedRead: 2,
		corpus.WrongType:    2,
		corpus.AcqRel:       2,
		corpus.CrossFile:    2,
	}
	return corpus.Generate(cfg).Sources()
}

// TestPipelinedMatchesClassicAndLegacyFrontend is the frontend overhaul's
// correctness bar: the fused pipelined schedule (AnalyzeSourcesCtx), the
// classic barrier schedule (AddSources+Analyze), and the legacy-frontend
// oracle (pre-interning lexer, arena-free parser, no canonicalization) must
// serialize byte-identically, at every worker count and GOMAXPROCS setting.
func TestPipelinedMatchesClassicAndLegacyFrontend(t *testing.T) {
	srcs := pipelineDiffSources()
	opts := ofence.DefaultOptions()

	oracle := ofence.NewProject()
	oracle.UseLegacyFrontendForTest()
	oracle.AddSources(srcs)
	want := viewJSON(t, oracle.Analyze(opts))

	classic := ofence.NewProject()
	classic.AddSources(srcs)
	if got := viewJSON(t, classic.Analyze(opts)); got != want {
		t.Fatalf("classic schedule on the new frontend diverges from the legacy oracle:\n%s\nvs\n%s", got, want)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 2, 8} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("gomaxprocs%d/workers%d", gmp, workers), func(t *testing.T) {
				runtime.GOMAXPROCS(gmp)
				o := opts
				o.Workers = workers
				p := ofence.NewProject()
				res, err := p.AnalyzeSourcesCtx(context.Background(), srcs, o)
				if err != nil {
					t.Fatal(err)
				}
				if got := viewJSON(t, res); got != want {
					t.Errorf("pipelined result diverges from the legacy oracle")
				}
			})
		}
	}
}

// TestPipelinedReusesArtifacts pins the fused schedule's incremental
// semantics: a second Analyze reuses every file in place, a whitespace edit
// changes nothing downstream of preprocess, and a real edit recomputes
// exactly the changed file — as the classic schedule always behaved.
func TestPipelinedReusesArtifacts(t *testing.T) {
	srcs := pipelineDiffSources()
	opts := ofence.DefaultOptions()
	p := ofence.NewProject()
	res, err := p.AnalyzeSourcesCtx(context.Background(), srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Incremental; got.FilesRecomputed != len(srcs) {
		t.Fatalf("cold run recomputed %d files, want %d", got.FilesRecomputed, len(srcs))
	}
	warm := p.Analyze(opts)
	if got := warm.Incremental; got.FilesReused != len(srcs) || got.FilesRecomputed != 0 {
		t.Errorf("warm run reused=%d recomputed=%d, want %d/0", got.FilesReused, got.FilesRecomputed, len(srcs))
	}
	if a, b := viewJSON(t, res), viewJSON(t, warm); a != b {
		t.Errorf("warm pipelined result differs from cold")
	}

	// Whitespace-only edit: preprocessed content unchanged, everything reused.
	p.ReplaceSource(srcs[0].Name, srcs[0].Src+"\n\n")
	edited := p.Analyze(opts)
	if got := edited.Incremental; got.FilesReused != len(srcs) || got.FilesRecomputed != 0 {
		t.Errorf("after whitespace edit reused=%d recomputed=%d, want %d/0", got.FilesReused, got.FilesRecomputed, len(srcs))
	}

	// Real edit: exactly the changed file recomputes.
	p.ReplaceSource(srcs[0].Name, srcs[0].Src+"\nint pipeline_extra;\n")
	edited = p.Analyze(opts)
	if got := edited.Incremental; got.FilesRecomputed != 1 || got.FilesReused != len(srcs)-1 {
		t.Errorf("after edit recomputed=%d reused=%d, want 1/%d", got.FilesRecomputed, got.FilesReused, len(srcs)-1)
	}
}

// TestFrontendMetersReported checks the meters behind the new extract-span
// counters: a cold pipelined run records the corpus's token volume and the
// parser's arena footprint, and the legacy oracle records no arena bytes.
func TestFrontendMetersReported(t *testing.T) {
	srcs := pipelineDiffSources()
	p := ofence.NewProject()
	res, err := p.AnalyzeSourcesCtx(context.Background(), srcs, ofence.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("corpus produced no sites")
	}
	tokens, arena := p.FrontendMetersForTest()
	if tokens == 0 {
		t.Error("frontend token meter stayed zero")
	}
	if arena == 0 {
		t.Error("frontend arena meter stayed zero")
	}

	legacy := ofence.NewProject()
	legacy.UseLegacyFrontendForTest()
	legacy.AddSources(srcs)
	legacy.Analyze(ofence.DefaultOptions())
	if _, la := legacy.FrontendMetersForTest(); la != 0 {
		t.Errorf("legacy frontend reported %d arena bytes, want 0", la)
	}
}
