package ofence_test

import (
	"context"
	"testing"

	"ofence/internal/ofence"
)

// FuzzFrontendAnalysisDiff fuzzes the frontend overhaul end to end: for any
// input the overhauled frontend (zero-copy scanner, interned identifiers,
// arena parser, fused pipeline) must serialize the analysis byte-identically
// to the legacy-frontend oracle. The scanner-level differential fuzz
// (ctoken.FuzzScannerMatchesLexer) pins token streams; this one pins what
// the user actually sees, catching divergence introduced anywhere between
// the lexer and the report — interning aliasing bugs included, since
// findings carry identifier strings canonicalized through the SymTab.
func FuzzFrontendAnalysisDiff(f *testing.F) {
	seeds := []string{
		"int x;\n",
		"struct dev { int flag; spinlock_t lock; };\n" +
			"void init(struct dev *d) { d->flag = 1; smp_wmb(); d->ready = 1; }\n" +
			"int use(struct dev *d) { if (d->ready) { smp_rmb(); return d->flag; } return 0; }\n",
		"#define READY 1\nstruct s { int a; };\nint f(struct s *p) { return p->a == READY; }\n",
		"#ifdef CONFIG_SMP\nint smp_only(void) { return 1; }\n#else\nint smp_only(void) { return 0; }\n#endif\n",
		"void w(struct d *p) { WRITE_ONCE(p->v, 1); smp_store_release(&p->ok, 1); }\n" +
			"int r(struct d *p) { if (smp_load_acquire(&p->ok)) return READ_ONCE(p->v); return -1; }\n",
		"typedef unsigned long ulong_t;\nulong_t g(ulong_t v) { return v << 2; }\n",
		"int broken( { ;;; \"unterminated\n",
		"#define twice(x) ((x) + (x))\nint h(int v) { return twice(v); }\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		srcs := []ofence.SourceFile{{Name: "fuzz.c", Src: src}}
		oracle := ofence.NewProject()
		oracle.UseLegacyFrontendForTest()
		oracle.AddSources(srcs)
		want := viewJSON(t, oracle.Analyze(ofence.DefaultOptions()))

		p := ofence.NewProject()
		res, err := p.AnalyzeSourcesCtx(context.Background(), srcs, ofence.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got := viewJSON(t, res); got != want {
			t.Errorf("analysis diverges from legacy frontend\nlegacy: %s\nnew:    %s", want, got)
		}
	})
}
