package ofence_test

import (
	"fmt"
	"testing"

	"ofence/internal/kernelhdr"
	"ofence/internal/ofence"
	"ofence/internal/sitegen"
)

// treeProject loads a generated kernel-shaped tree into a fresh project:
// the miniature kernel headers, the tree's per-directory headers, half the
// tree's config symbols (so #ifdef variance is exercised in both states),
// and every source file.
func treeProject(tr *sitegen.Tree, oracle bool) *ofence.Project {
	p := ofence.NewProject()
	if oracle {
		p.UseSequentialGlobalForTest()
	}
	kernelhdr.Register(p)
	for _, h := range tr.Headers {
		p.AddHeader(h.Name, h.Src)
	}
	for i, c := range tr.Configs {
		if i%2 == 0 {
			p.Define(c, "1")
		}
	}
	srcs := make([]ofence.SourceFile, 0, len(tr.Files))
	for _, f := range tr.Files {
		srcs = append(srcs, ofence.SourceFile{Name: f.Name, Src: f.Src})
	}
	p.AddSources(srcs)
	return p
}

// TestTreescaleByteIdentity is the correctness bar of the parallel global
// phases on a small generated tree: the production path (sharded call
// graph, SCC-scheduled semprop, sharded dedup and census) must serialize
// byte-identically to the sequential oracle at every worker count, with and
// without ReleaseASTs.
func TestTreescaleByteIdentity(t *testing.T) {
	tr := sitegen.GenerateTree(sitegen.DefaultTreeSpec(160, 7))
	opts := ofence.DefaultOptions()
	opts.InterprocDepth = 1

	oracle := treeProject(tr, true)
	oopts := opts
	oopts.Workers = 1
	ores := oracle.Analyze(oopts)
	want := viewJSON(t, ores)
	if len(ores.Sites) == 0 || len(ores.Pairings) == 0 || len(ores.Findings) == 0 {
		t.Fatalf("oracle run is degenerate: %d sites, %d pairings, %d findings",
			len(ores.Sites), len(ores.Pairings), len(ores.Findings))
	}
	if ores.CallGraph.Functions == 0 || len(ores.Inferred) == 0 {
		t.Fatalf("oracle run has no interprocedural signal: %+v", ores.CallGraph)
	}

	for _, workers := range []int{1, 3, 8} {
		for _, release := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d release=%t", workers, release), func(t *testing.T) {
				p := treeProject(tr, false)
				ropts := opts
				ropts.Workers = workers
				ropts.ReleaseASTs = release
				res := p.Analyze(ropts)
				if got := viewJSON(t, res); got != want {
					t.Errorf("parallel global phases diverge from sequential oracle")
				}
				if res.Inferred == nil || res.CallGraph != ores.CallGraph {
					t.Errorf("call-graph stats diverge: %+v vs %+v", res.CallGraph, ores.CallGraph)
				}
			})
		}
	}
}

// TestTreescaleReleaseASTsWarmReuse asserts the depth-0 pipeline serves a
// released project entirely from cached sites — no re-parse — and still
// serializes identically.
func TestTreescaleReleaseASTsWarmReuse(t *testing.T) {
	tr := sitegen.GenerateTree(sitegen.DefaultTreeSpec(48, 11))
	opts := ofence.DefaultOptions()
	opts.ReleaseASTs = true

	p := treeProject(tr, false)
	cold := p.Analyze(opts)
	coldJSON := viewJSON(t, cold)
	for _, fu := range p.Files() {
		if fu.AST != nil {
			t.Fatalf("%s: AST retained after ReleaseASTs analysis", fu.Name)
		}
	}
	warm := p.Analyze(opts)
	if got := viewJSON(t, warm); got != coldJSON {
		t.Error("warm ReleaseASTs run diverges from cold")
	}
	if warm.Incremental.FilesRecomputed != 0 {
		t.Errorf("warm run recomputed %d files; want 0 (reuse must not need ASTs)",
			warm.Incremental.FilesRecomputed)
	}
	// Flipping an option that re-keys extraction forces a re-parse of the
	// released units — and must still produce a coherent result.
	opts2 := opts
	opts2.Access.WriteWindow += 2
	re := p.Analyze(opts2)
	if re.Incremental.FilesRecomputed != len(tr.Files) {
		t.Errorf("re-keyed run recomputed %d files; want %d",
			re.Incremental.FilesRecomputed, len(tr.Files))
	}
	if len(re.Sites) == 0 {
		t.Error("re-keyed run lost every site")
	}
}
