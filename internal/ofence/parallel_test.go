package ofence

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// parallelTestSrc holds a pairing with a misplaced-access deviation plus an
// unneeded barrier, so every checker path produces output.
const parallelTestSrc = `
struct ps { int flag; int data; struct task_struct *task; };
void pw(struct ps *p) {
	p->data = 1;
	smp_wmb();
	p->flag = 1;
}
void pr(struct ps *p) {
	smp_rmb();
	if (!p->flag)
		return;
	use(p->data);
}
int pu(struct ps *p) {
	p->data = 2;
	smp_wmb();
	wake_up_process(p->task);
	return 1;
}`

func newParallelTestProject(t *testing.T) *Project {
	t.Helper()
	p := NewProject()
	p.AddSource("p.c", parallelTestSrc)
	return p
}

// viewEqual compares two results through their stable JSON projection.
func viewEqual(t *testing.T, a, b *Result) {
	t.Helper()
	aj, err := json.Marshal(a.View())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.View())
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("results differ:\n%s\nvs\n%s", aj, bj)
	}
}

func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	seq := newParallelTestProject(t).Analyze(DefaultOptions())

	opts := DefaultOptions()
	opts.Workers = 4
	par, err := newParallelTestProject(t).AnalyzeParallel(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Findings) == 0 {
		t.Fatal("test source produced no findings")
	}
	viewEqual(t, seq, par)
}

func TestAnalyzeParallelCanceledContext(t *testing.T) {
	p := newParallelTestProject(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.AnalyzeParallel(ctx, DefaultOptions())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled analysis returned a result")
	}
	// The project must recover: a fresh call succeeds and re-extracts
	// whatever the canceled run skipped.
	res, err = p.AnalyzeParallel(context.Background(), DefaultOptions())
	if err != nil || len(res.Pairings) == 0 {
		t.Fatalf("post-cancel analysis: res=%v err=%v", res, err)
	}
}

func TestAnalyzeParallelDeadline(t *testing.T) {
	p := newParallelTestProject(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := p.AnalyzeParallel(ctx, DefaultOptions()); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestConcurrentAnalyzeIndependentProjects is the race-detector audit for
// hidden shared state: many goroutines analyze independent projects (and
// clones of one project) at once.
func TestConcurrentAnalyzeIndependentProjects(t *testing.T) {
	base := newParallelTestProject(t)
	want := base.Clone().Analyze(DefaultOptions())

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var p *Project
			if g%2 == 0 {
				p = newParallelTestProject(t) // independent project
			} else {
				p = base.Clone() // clone sharing immutable ASTs
			}
			res, err := p.AnalyzeParallel(context.Background(), DefaultOptions())
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if len(res.Findings) != len(want.Findings) || len(res.Pairings) != len(want.Pairings) {
				t.Errorf("goroutine %d: findings %d pairings %d, want %d/%d",
					g, len(res.Findings), len(res.Pairings), len(want.Findings), len(want.Pairings))
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentAnalyzeSameProject exercises the internal serialization:
// concurrent Analyze calls on ONE project must not race on the extraction
// cache and must each return complete results.
func TestConcurrentAnalyzeSameProject(t *testing.T) {
	p := newParallelTestProject(t)
	want := len(p.Analyze(DefaultOptions()).Findings)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := len(p.Analyze(DefaultOptions()).Findings); got != want {
				t.Errorf("findings = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestAddSourcesDeterministicOrder(t *testing.T) {
	srcs := []SourceFile{
		{Name: "z.c", Src: "struct a { int x; };"},
		{Name: "a.c", Src: "struct b { int y; };"},
		{Name: "m.c", Src: "struct c { int z; };"},
	}
	for round := 0; round < 3; round++ {
		p := NewProject()
		units := p.AddSources(srcs)
		if len(units) != len(srcs) {
			t.Fatalf("units = %d", len(units))
		}
		for i, fu := range p.Files() {
			if fu.Name != srcs[i].Name {
				t.Errorf("round %d: file %d = %s, want %s", round, i, fu.Name, srcs[i].Name)
			}
		}
	}
}

func TestCloneSharesArtifactsCopyOnWrite(t *testing.T) {
	p := newParallelTestProject(t)
	p.AddSource("q.c", `
struct qs { int seq; int val; };
void qw(struct qs *q) {
	q->val = 7;
	smp_wmb();
	q->seq = 1;
}
void qr(struct qs *q) {
	int s = q->seq;
	smp_rmb();
	use(q->val, s);
}`)
	p.Analyze(DefaultOptions())

	// The clone inherits the originals' immutable artifacts: re-analyzing
	// the identical file set is pure cache replay.
	c := p.Clone()
	res := c.Analyze(DefaultOptions())
	if got := res.Incremental; got.FilesReused != 2 || got.FilesRecomputed != 0 {
		t.Fatalf("clone replay: reused=%d recomputed=%d, want 2/0", got.FilesReused, got.FilesRecomputed)
	}

	// Editing one file in the clone recomputes exactly that file; the
	// sibling's artifacts are served as is.
	c.ReplaceSource("q.c", `
struct qs { int seq; int val; };
void qw(struct qs *q) {
	q->val = 9;
	smp_wmb();
	q->seq = 2;
}`)
	res = c.Analyze(DefaultOptions())
	if got := res.Incremental; got.FilesReused != 1 || got.FilesRecomputed != 1 {
		t.Fatalf("clone after edit: reused=%d recomputed=%d, want 1/1", got.FilesReused, got.FilesRecomputed)
	}

	// Copy-on-write: the clone's mutation never disturbs the original.
	res = p.Analyze(DefaultOptions())
	if len(res.Pairings) == 0 {
		t.Error("original project affected by clone mutation")
	}
	if got := res.Incremental; got.FilesReused != 2 || got.FilesRecomputed != 0 {
		t.Errorf("original replay: reused=%d recomputed=%d, want 2/0", got.FilesReused, got.FilesRecomputed)
	}
}
