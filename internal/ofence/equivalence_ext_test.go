package ofence_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"ofence/internal/corpus"
	"ofence/internal/ofence"
)

func viewJSON(t *testing.T, res *ofence.Result) string {
	t.Helper()
	b, err := json.Marshal(res.View())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIncrementalEquivalenceFixtures is the correctness bar of the
// incremental pipeline: for every corpus fixture with a published fix, a
// warm project that applies the fix via ReplaceSource and re-analyzes must
// produce byte-identical JSON to a cold project built directly with the
// fixed file — at depth 0 and in interprocedural mode. At depth 0 it also
// asserts that exactly the edited file was recomputed.
func TestIncrementalEquivalenceFixtures(t *testing.T) {
	fixtures := corpus.Fixtures()
	all := make([]ofence.SourceFile, 0, len(fixtures))
	for _, fx := range fixtures {
		all = append(all, ofence.SourceFile{Name: fx.Name, Src: fx.Source})
	}

	for _, depth := range []int{0, 2} {
		opts := ofence.DefaultOptions()
		opts.InterprocDepth = depth
		for i, fx := range fixtures {
			if fx.Fixed == "" {
				continue
			}
			t.Run(fmt.Sprintf("depth%d/%s", depth, fx.Name), func(t *testing.T) {
				// Cold: the fixed file from the start.
				cold := ofence.NewProject()
				for j, sf := range all {
					if j == i {
						cold.AddSource(sf.Name, fx.Fixed)
						continue
					}
					cold.AddSource(sf.Name, sf.Src)
				}
				coldJSON := viewJSON(t, cold.Analyze(opts))

				// Warm: analyze the buggy set, apply the fix, re-analyze.
				warm := ofence.NewProject()
				warm.AddSources(all)
				preJSON := viewJSON(t, warm.Analyze(opts))
				warm.ReplaceSource(fx.Name, fx.Fixed)
				res := warm.Analyze(opts)
				if got := viewJSON(t, res); got != coldJSON {
					t.Errorf("incremental result differs from cold analysis:\n%s\nvs\n%s", got, coldJSON)
				}
				if depth == 0 {
					if got := res.Incremental; got.FilesRecomputed != 1 || got.FilesReused != len(all)-1 {
						t.Errorf("recomputed=%d reused=%d, want 1/%d", got.FilesRecomputed, got.FilesReused, len(all)-1)
					}
				} else if res.Incremental.FilesRecomputed < 1 {
					t.Errorf("recomputed=%d, want >= 1", res.Incremental.FilesRecomputed)
				}

				// Reverting the edit replays the original analysis verbatim.
				warm.ReplaceSource(fx.Name, fx.Source)
				if got := viewJSON(t, warm.Analyze(opts)); got != preJSON {
					t.Errorf("revert result differs from original analysis")
				}
			})
		}
	}
}
