package ofence

// UseLegacyFrontendForTest routes the project's frontend through the
// pre-overhaul oracle: the rune-based lexer, the arena-free parser, and no
// identifier canonicalization. Differential tests and benchmarks compare
// production runs against projects configured this way.
func (p *Project) UseLegacyFrontendForTest() { p.legacyFrontend = true }

// UseSequentialGlobalForTest routes the project's interprocedural global
// phases through the sequential pre-sharding oracle: callgraph.Build, the
// round-robin semprop fixpoint, the per-file closure BFS, unsharded site
// dedup and the sequential ranking census. The tree-scale overhaul's
// differential tests and benchmarks compare production runs against
// projects configured this way.
func (p *Project) UseSequentialGlobalForTest() { p.seqGlobal = true }

// FrontendMetersForTest sums the per-file frontend meters (preprocessed
// token count, AST arena bytes) across the project's artifact records.
func (p *Project) FrontendMetersForTest() (tokens, arenaBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fu := range p.files {
		if fu.art != nil {
			tokens += int64(fu.art.tokens)
			arenaBytes += fu.art.arenaBytes
		}
	}
	return
}
