// Stage-artifact codecs: the bridge between the per-file stage caches and
// a durable/remote rescache.ArtifactStore. Only the preprocess stage has a
// codec — its artifact is a flat token stream plus diagnostics, which
// round-trips losslessly through bytes. The parse/cfg/extract artifacts
// hold live AST and CFG pointers and stay memory-only; recomputing them
// from a store-served token stream is cheap and keeps results
// byte-identical (the parser is deterministic over the tokens).
package ofence

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"ofence/internal/cpp"
	"ofence/internal/ctoken"
	"ofence/internal/rescache"
)

// preBlob is the wire form of a preprocess-stage artifact. Errors travel as
// strings: every consumer downstream (parse-stage diagnostics, the result's
// parse_errors) only ever reads err.Error(), so the round trip is lossless
// where it matters. Macros are dropped — nothing after preprocessing
// reads them.
type preBlob struct {
	Hash   string
	Tokens []ctoken.Token
	Errors []string
}

func encodePreArtifact(v any) ([]byte, error) {
	pa, ok := v.(*preArtifact)
	if !ok {
		return nil, fmt.Errorf("stagecodec: unexpected preprocess value %T", v)
	}
	blob := preBlob{Hash: pa.hash, Tokens: pa.pre.Tokens}
	for _, err := range pa.pre.Errors {
		blob.Errors = append(blob.Errors, err.Error())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&blob); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePreArtifact(data []byte) (any, error) {
	var blob preBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, err
	}
	if blob.Hash == "" {
		return nil, fmt.Errorf("stagecodec: preprocess blob missing hash")
	}
	pre := &cpp.Result{Tokens: blob.Tokens}
	for _, msg := range blob.Errors {
		pre.Errors = append(pre.Errors, errors.New(msg))
	}
	return &preArtifact{pre: pre, hash: blob.Hash}, nil
}

// StageCodecs returns the codec registry for the per-file stage caches,
// suitable for rescache.(*Stages).AttachStore: stage name → codec. Stages
// absent from the map cannot be shared across processes.
func StageCodecs() map[string]rescache.Codec {
	return map[string]rescache.Codec{
		stagePreprocess: {Encode: encodePreArtifact, Decode: decodePreArtifact},
	}
}

// NewProjectWithStages returns an empty project whose per-file stage caches
// are the given family instead of a private one — the way a serving process
// shares one content-addressed artifact tier across every project it
// builds (and, through an attached ArtifactStore, across processes).
// A nil stages falls back to a private family.
func NewProjectWithStages(stages *rescache.Stages) *Project {
	p := NewProject()
	if stages != nil {
		p.stages = stages
	}
	return p
}
