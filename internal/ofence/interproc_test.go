package ofence

import (
	"encoding/json"
	"testing"

	"ofence/internal/memmodel"
)

// The interprocedural scenario the paper's one-level same-file exploration
// cannot handle: the write barrier lives in a helper defined in another
// file, so at depth 0 the barrier's window sees none of the caller's
// accesses and no pairing forms.
func interprocProject(t *testing.T) *Project {
	t.Helper()
	p := NewProject()
	p.AddHeader("shared.h", `struct foo { int data; int flag; };`)
	srcs := []SourceFile{
		{Name: "writer.c", Src: `
#include "shared.h"
void publish_barrier(void);
void producer(struct foo *f) {
	f->data = 1;
	publish_barrier();
	f->flag = 1;
}
`},
		{Name: "barrier.c", Src: `
void publish_barrier(void) { smp_wmb(); }
`},
		{Name: "reader.c", Src: `
#include "shared.h"
void consumer(struct foo *f) {
	int ready = f->flag;
	smp_rmb();
	int d = f->data;
}
`},
	}
	for _, fu := range p.AddSources(srcs) {
		if len(fu.Errs) > 0 {
			t.Fatalf("%s: parse errors: %v", fu.Name, fu.Errs)
		}
	}
	return p
}

func TestInterprocCrossFilePairing(t *testing.T) {
	p := interprocProject(t)

	base := p.Analyze(DefaultOptions())
	if len(base.Pairings) != 0 {
		t.Fatalf("depth 0: pairings = %d, want 0 (barrier context is in another file)", len(base.Pairings))
	}
	if base.Inferred != nil {
		t.Fatalf("depth 0: inferred = %v, want nil", base.Inferred)
	}

	opts := DefaultOptions()
	opts.InterprocDepth = 2
	res := p.Analyze(opts)
	if len(res.Pairings) != 1 {
		t.Fatalf("depth 2: pairings = %d, want 1", len(res.Pairings))
	}
	pg := res.Pairings[0]
	names := map[string]bool{}
	for _, s := range pg.Sites {
		names[s.Name] = true
	}
	if !names["smp_wmb"] || !names["smp_rmb"] {
		t.Errorf("pairing sites = %v, want smp_wmb <-> smp_rmb", names)
	}
	objs := map[string]bool{}
	for _, o := range pg.Common {
		objs[o.String()] = true
	}
	if !objs["(foo, data)"] || !objs["(foo, flag)"] {
		t.Errorf("common objects = %v, want (foo, data) and (foo, flag)", objs)
	}

	// The wrapper must be in the inferred set as a write barrier.
	found := false
	for _, f := range res.Inferred {
		if f.Name == "publish_barrier" {
			found = true
			if f.Kind != memmodel.WriteBarrier {
				t.Errorf("publish_barrier inferred as %v, want write", f.Kind)
			}
			if f.Known {
				t.Error("publish_barrier marked Known, but it is not in the built-in catalog")
			}
		}
	}
	if !found {
		t.Error("publish_barrier missing from the inferred set")
	}
	if res.CallGraph.Functions == 0 || res.CallGraph.Edges == 0 {
		t.Errorf("call graph stats empty: %+v", res.CallGraph)
	}
}

// The same physical barrier is seen from its home file and, inlined, from
// callers in other files; interproc analysis must keep exactly one site per
// physical barrier (the richest view).
func TestInterprocGlobalSiteDedup(t *testing.T) {
	p := interprocProject(t)
	opts := DefaultOptions()
	opts.InterprocDepth = 2
	res := p.Analyze(opts)
	seen := map[string]bool{}
	for _, s := range res.Sites {
		if seen[s.ID()] {
			t.Errorf("duplicate site %s", s.ID())
		}
		seen[s.ID()] = true
	}
	// The winning smp_wmb view must be the producer's (it captured accesses).
	for _, s := range res.Sites {
		if s.Name == "smp_wmb" {
			if s.Fn.Name != "producer" {
				t.Errorf("smp_wmb site kept from %s, want producer (richest view)", s.Fn.Name)
			}
			if len(s.Before) == 0 || len(s.After) == 0 {
				t.Errorf("smp_wmb window empty: %d before, %d after", len(s.Before), len(s.After))
			}
		}
	}
}

// Default options must produce output byte-identical to a run that never
// heard of interprocedural mode: the zero InterprocDepth disables the call
// graph, the inference, and every new JSON field.
func TestDefaultOptionsByteIdentical(t *testing.T) {
	p := interprocProject(t)
	res := p.Analyze(DefaultOptions())
	raw, err := json.Marshal(res.View())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["inferred_semantics"]; ok {
		t.Error("default-mode JSON contains inferred_semantics")
	}

	explicit := DefaultOptions()
	explicit.InterprocDepth = 0
	raw2, err := json.Marshal(p.Clone().Analyze(explicit).View())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Errorf("explicit depth-0 output differs from default:\n%s\nvs\n%s", raw, raw2)
	}
}

// Switching between depths on one project must invalidate the extraction
// cache both ways (the options fingerprint includes InterprocDepth).
func TestInterprocCacheInvalidation(t *testing.T) {
	p := interprocProject(t)
	opts := DefaultOptions()
	opts.InterprocDepth = 2
	if n := len(p.Analyze(opts).Pairings); n != 1 {
		t.Fatalf("depth 2: pairings = %d, want 1", n)
	}
	if n := len(p.Analyze(DefaultOptions()).Pairings); n != 0 {
		t.Fatalf("back to depth 0: pairings = %d, want 0 (stale interproc extraction reused)", n)
	}
	if n := len(p.Analyze(opts).Pairings); n != 1 {
		t.Fatalf("depth 2 again: pairings = %d, want 1", n)
	}
}

// A wrapper beyond the splice budget still bounds exploration via its
// inferred semantics instead of letting the window run through it — the
// degraded-but-sound behavior for deep call chains.
func TestInferredSemanticsBoundExploration(t *testing.T) {
	p := NewProject()
	p.AddHeader("shared.h", `struct foo { int data; int flag; };`)
	srcs := []SourceFile{
		{Name: "deep.c", Src: `
#include "shared.h"
void lvl1(void);
void user(struct foo *f) {
	f->data = 1;
	lvl1();
	f->flag = 1;
}
`},
		{Name: "lvl1.c", Src: `void lvl2(void); void lvl1(void) { lvl2(); }`},
		{Name: "lvl2.c", Src: `void lvl3(void); void lvl2(void) { lvl3(); }`},
		{Name: "lvl3.c", Src: `void lvl3(void) { smp_mb(); }`},
	}
	for _, fu := range p.AddSources(srcs) {
		if len(fu.Errs) > 0 {
			t.Fatalf("%s: parse errors: %v", fu.Name, fu.Errs)
		}
	}
	opts := DefaultOptions()
	opts.InterprocDepth = 1 // lvl1's body splices, the chain below does not
	res := p.Analyze(opts)

	// The full chain carries the barrier on every path, so every level is
	// inferred as a full barrier.
	kinds := map[string]memmodel.BarrierKind{}
	for _, f := range res.Inferred {
		kinds[f.Name] = f.Kind
	}
	for _, fn := range []string{"lvl1", "lvl2", "lvl3"} {
		if kinds[fn] != memmodel.FullBarrier {
			t.Errorf("%s inferred as %v, want full", fn, kinds[fn])
		}
	}

	// In user's stream the spliced lvl1 body ends at the un-spliced lvl2()
	// call, whose inferred semantics must stop the smp_mb exploration there:
	// the barrier itself is out of splice reach, so no site sees f->data or
	// f->flag and nothing pairs.
	for _, s := range res.Sites {
		if s.Name == "smp_mb" && (len(s.Before) > 0 || len(s.After) > 0) {
			t.Errorf("smp_mb window crossed an inferred-barrier call: %s", s)
		}
	}
}
