package ofence_test

// Documentation lint, run by `make lint` (go test . -run TestDocs):
//
//   - every flag registered by a cmd/ binary must be mentioned in
//     docs/CLI.md, so the flag reference cannot go stale;
//   - every exported top-level identifier in internal/obs must carry a doc
//     comment, since obs is the instrumentation API other packages build
//     against.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// cmdFlags parses one cmd/<name>/main.go and returns the first-argument
// string literals of every flag.String/Bool/Int/Int64/Float64/Duration
// call — the registered flag names.
func cmdFlags(t *testing.T, mainGo string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, mainGo, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", mainGo, err)
	}
	registrars := map[string]bool{
		"String": true, "Bool": true, "Int": true, "Int64": true,
		"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
	}
	var flags []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registrars[sel.Sel.Name] {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "flag" {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			flags = append(flags, strings.Trim(lit.Value, `"`))
		}
		return true
	})
	sort.Strings(flags)
	return flags
}

// TestDocsCLIFlagCoverage fails when a binary registers a flag that
// docs/CLI.md does not mention as `-name`.
func TestDocsCLIFlagCoverage(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "CLI.md"))
	if err != nil {
		t.Fatalf("docs/CLI.md missing: %v", err)
	}
	text := string(doc)

	cmds, err := filepath.Glob(filepath.Join("cmd", "*", "main.go"))
	if err != nil || len(cmds) == 0 {
		t.Fatalf("no cmd/*/main.go found (err=%v)", err)
	}
	for _, mainGo := range cmds {
		binary := filepath.Base(filepath.Dir(mainGo))
		if !strings.Contains(text, "## "+binary) {
			t.Errorf("docs/CLI.md has no section for %s", binary)
		}
		for _, name := range cmdFlags(t, mainGo) {
			if !strings.Contains(text, "`-"+name+"`") && !strings.Contains(text, "`-"+name+" ") {
				t.Errorf("docs/CLI.md does not document %s -%s", binary, name)
			}
		}
	}
}

// TestDocsObsExportedComments fails when internal/obs exports an
// identifier without a doc comment.
func TestDocsObsExportedComments(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join("internal", "obs"), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for fname, f := range pkg.Files {
			for _, decl := range f.Decls {
				for _, missing := range undocumentedExports(decl) {
					pos := fset.Position(decl.Pos())
					t.Errorf("%s:%d: exported %s has no doc comment", fname, pos.Line, missing)
				}
			}
		}
	}
}

// undocumentedExports returns the exported names a top-level declaration
// introduces without documentation. For grouped var/const/type blocks a
// doc comment on either the block or the individual spec counts.
func undocumentedExports(decl ast.Decl) []string {
	var missing []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				name = fmt.Sprintf("method %s (on %s)", name, recvType(d.Recv.List[0].Type))
			}
			missing = append(missing, name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					missing = append(missing, "type "+sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range sp.Names {
					if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						missing = append(missing, name.Name)
					}
				}
			}
		}
	}
	return missing
}

func recvType(expr ast.Expr) string {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// TestDocsMetricsCoverage fails when internal/service or internal/fleet
// registers a Prometheus series (any whole string literal of the form
// ofence_*) that docs/OBSERVABILITY.md does not mention, or when any obs
// span counter added anywhere in the tree (a `.Add("name", ...)` literal)
// is missing from the span documentation. This keeps the metrics catalog —
// including the incremental-pipeline counters and the fleet series —
// honest the same way the flag table is.
func TestDocsMetricsCoverage(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("docs/OBSERVABILITY.md missing: %v", err)
	}
	text := string(doc)

	for _, dir := range []string{filepath.Join("internal", "service"), filepath.Join("internal", "fleet")} {
		for _, name := range stringLiterals(t, dir, isMetricName) {
			if !strings.Contains(text, "`"+name+"`") {
				t.Errorf("docs/OBSERVABILITY.md does not document metric %s", name)
			}
		}
	}
	for _, name := range spanCounterNames(t) {
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("docs/OBSERVABILITY.md does not document span counter %s", name)
		}
	}
}

// isMetricName reports whether a string literal is a bare Prometheus
// series name (as opposed to a format string or help text mentioning one).
func isMetricName(s string) bool {
	if !strings.HasPrefix(s, "ofence_") {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && r != '_' {
			return false
		}
	}
	return true
}

// stringLiterals parses every non-test Go file under dir and returns the
// distinct string literals accepted by keep, sorted.
func stringLiterals(t *testing.T, dir string, keep func(string) bool) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					s := strings.Trim(lit.Value, "`\"")
					if keep(s) {
						seen[s] = true
					}
				}
				return true
			})
		}
	}
	var out []string
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// spanCounterNames returns the distinct counter names passed to obs
// span.Add(...) calls across internal/ and cmd/, found syntactically as
// any method call named Add whose first argument is a string literal.
func spanCounterNames(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") ||
				strings.HasSuffix(path, "_test.go") {
				return err
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					seen[strings.Trim(lit.Value, `"`)] = true
				}
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var out []string
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestDocsBenchJSONSchema fails when any recorded benchmark document
// (BENCH_*.json at the repo root) is missing the shared schema's required
// fields, so every headline number stays traceable to the command that
// produced it and the acceptance bar it was measured against.
func TestDocsBenchJSONSchema(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json documents found at the repo root")
	}
	// Subsystems with a recorded headline number must keep it recorded:
	// losing the document silently would orphan the tuned constants that
	// mirror it (rank.DefaultThreshold mirrors BENCH_confidence.json) or the
	// acceptance bar measured against it (BENCH_frontend.json carries the
	// frontend overhaul's >=3x bar, BENCH_treescale.json the tree-scale
	// global-phase overhaul's >=2.5x bar).
	required := []string{"BENCH_confidence.json", "BENCH_frontend.json", "BENCH_treescale.json"}
	have := map[string]bool{}
	for _, f := range files {
		have[filepath.Base(f)] = true
	}
	for _, f := range required {
		if !have[f] {
			t.Errorf("required benchmark document %s is missing (refresh with make bench-confidence)", f)
		}
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Errorf("%s: invalid JSON: %v", file, err)
			continue
		}
		for _, field := range []string{"benchmark", "command", "results", "acceptance"} {
			if _, ok := doc[field]; !ok {
				t.Errorf("%s: missing required field %q", file, field)
			}
		}
	}
}
